package opt

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"refocus/internal/arch"
)

// testSpec is a small, fast search over the real grid: 3 generations of
// 6 on the ResNet-50 workload.
func testSpec(strategy string) Spec {
	return Spec{
		Preset:      "fb",
		Network:     "ResNet-50",
		Strategy:    strategy,
		Generations: 3,
		Population:  6,
		Seed:        11,
	}.WithDefaults()
}

func mustRun(t *testing.T, spec Spec, dir string, parallelism int) *Result {
	t.Helper()
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, ID: id, Dir: dir, Eval: DirectEval(), Parallelism: parallelism}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func frontJSON(t *testing.T, front []FrontPoint) string {
	t.Helper()
	b, err := json.Marshal(front)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunnerProducesFront(t *testing.T) {
	res := mustRun(t, testSpec(StrategyEvolve), "", 4)
	if len(res.Front) == 0 {
		t.Fatal("unconstrained search produced an empty front")
	}
	if res.Completed != res.Executed+res.Resumed {
		t.Errorf("Completed %d != Executed %d + Resumed %d", res.Completed, res.Executed, res.Resumed)
	}
	if res.Completed != 18 {
		t.Errorf("Completed = %d, want the full 3x6 budget", res.Completed)
	}
	for _, p := range res.Front {
		if p.Config == "" || p.ConfigHash == "" {
			t.Errorf("front point without config identity: %+v", p)
		}
		if p.Metrics.FPS <= 0 || p.Metrics.AreaMM2 <= 0 || p.Metrics.PowerW <= 0 {
			t.Errorf("front point with non-positive metrics: %+v", p)
		}
	}
}

func TestRunnerResumeByteIdentical(t *testing.T) {
	spec := testSpec(StrategyEvolve)
	control := mustRun(t, spec, t.TempDir(), 2)

	// Interrupted run: cancel after 5 evaluated points, mid-search.
	dir := t.TempDir()
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var partial atomic.Int64
	r := &Runner{
		Spec: spec, ID: id, Dir: dir, Eval: DirectEval(), Parallelism: 2,
		Hooks: Hooks{PointExecuted: func(CandidateResult) {
			if partial.Add(1) == 5 {
				cancel()
			}
		}},
	}
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("interrupted run should return an error")
	}
	if _, err := os.Stat(CheckpointPath(dir, id)); err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	// Resume to completion and compare byte-for-byte.
	r2 := &Runner{Spec: spec, ID: id, Dir: dir, Eval: DirectEval(), Parallelism: 2}
	res, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed == 0 {
		t.Error("resumed run recovered no checkpointed points")
	}
	if res.Executed+res.Resumed != res.Completed {
		t.Errorf("duplicate evaluations: Executed %d + Resumed %d != Completed %d", res.Executed, res.Resumed, res.Completed)
	}
	if res.Completed != control.Completed {
		t.Errorf("resumed Completed = %d, control %d", res.Completed, control.Completed)
	}
	got, want := frontJSON(t, res.Front), frontJSON(t, control.Front)
	if got != want {
		t.Errorf("resumed front differs from control:\n got %s\nwant %s", got, want)
	}
}

func TestRunnerParallelismIndependence(t *testing.T) {
	for _, strategy := range Strategies() {
		spec := testSpec(strategy)
		a := mustRun(t, spec, "", 1)
		b := mustRun(t, spec, "", 6)
		if got, want := frontJSON(t, a.Front), frontJSON(t, b.Front); got != want {
			t.Errorf("%s: front depends on parallelism:\n p=1 %s\n p=6 %s", strategy, want, got)
		}
	}
}

func TestRunnerBudgetConstraints(t *testing.T) {
	// First pass unconstrained to learn the area range, then constrain
	// to the smallest evaluated area so most points become infeasible.
	probe := mustRun(t, testSpec(StrategyRandom), "", 4)
	minArea := 0.0
	for _, p := range probe.Front {
		if minArea == 0 || p.Metrics.AreaMM2 < minArea {
			minArea = p.Metrics.AreaMM2
		}
	}
	spec := testSpec(StrategyRandom)
	spec.AreaBudgetMM2 = minArea
	res := mustRun(t, spec, "", 4)
	for _, p := range res.Front {
		if p.Metrics.AreaMM2 > spec.AreaBudgetMM2 {
			t.Errorf("front point breaks the area budget: %g > %g", p.Metrics.AreaMM2, spec.AreaBudgetMM2)
		}
	}
	if res.Infeasible == 0 {
		t.Error("tight budget produced no infeasible points — constraint not exercised")
	}
}

func TestRunnerRecordsInvalidPoints(t *testing.T) {
	// Reuses 0 on a feedback base is architecturally invalid: the
	// search must record the hole and keep going, never fail.
	spec := Spec{
		Preset:      "fb",
		Network:     "ResNet-50",
		Strategy:    StrategyRandom,
		Generations: 2,
		Population:  6,
		Seed:        3,
		Space:       Space{Reuses: []int{0, 15}},
	}.WithDefaults()
	res := mustRun(t, spec, "", 4)
	if res.Invalid == 0 {
		t.Error("expected some invalid Reuses=0 candidates to be recorded")
	}
	for _, p := range res.Front {
		if p.Reuses == 0 {
			t.Errorf("invalid point leaked into the front: %+v", p)
		}
	}
}

func TestRunnerYieldAxis(t *testing.T) {
	spec := Spec{
		Preset:      "fb",
		Network:     "ResNet-50",
		Strategy:    StrategyRandom,
		Generations: 2,
		Population:  4,
		Seed:        5,
		YieldTrials: 4,
	}.WithDefaults()
	a := mustRun(t, spec, "", 2)
	b := mustRun(t, spec, "", 4)
	if len(a.Front) == 0 {
		t.Fatal("yield search produced no front")
	}
	for _, p := range a.Front {
		if p.Metrics.Yield < 0 || p.Metrics.Yield > 1 {
			t.Errorf("yield %g outside [0,1]", p.Metrics.Yield)
		}
	}
	if got, want := frontJSON(t, a.Front), frontJSON(t, b.Front); got != want {
		t.Errorf("yield front depends on parallelism:\n%s\n%s", got, want)
	}
}

func TestCheckpointGuards(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(CheckpointPath(dir, "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint should be ErrNotExist, got %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"Version":99,"ID":"x","Spec":{},"Done":null,"Front":null}`), 0o644)
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Error("version mismatch accepted")
	}
	os.WriteFile(bad, []byte(`{"Version":1,"ID":"","Spec":{},"Done":null,"Front":null}`), 0o644)
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Error("empty ID accepted")
	}

	// A checkpoint for a different search must not be resumed.
	spec := testSpec(StrategyRandom)
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(CheckpointPath(dir, id), &Checkpoint{Version: 1, ID: "someone-else", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, ID: id, Dir: dir, Eval: DirectEval()}
	if _, err := r.Run(context.Background()); !errors.Is(err, errWrongSearch) {
		t.Errorf("wrong-ID checkpoint: got %v, want errWrongSearch", err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(ManagerConfig{Dir: dir, Eval: DirectEval(), Parallelism: 4, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := testSpec(StrategyRandom)
	j, created, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Start should create the job")
	}
	// Resubmitting the same spec attaches (created=false) whether the
	// job is still running or just finished-and-restarted semantics;
	// while live it must be the same job.
	if j2, created2, err := m.Start(spec); err == nil && created2 && j2 != j {
		t.Error("resubmit created a second live job for the same identity")
	}
	<-j.Done()
	st := j.Status()
	if st.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", st.Status, st.Error)
	}
	if len(st.Front) == 0 || st.CompletedPoints != st.TotalPoints {
		t.Errorf("unexpected final status: %+v", st)
	}

	// The checkpoint now reads back as done.
	disk, err := m.StatusFromDisk(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if disk.Status != StatusDone || len(disk.Front) != len(st.Front) {
		t.Errorf("disk status = %+v, want done with the same front", disk)
	}

	// A partial checkpoint reads back as interrupted.
	other := testSpec(StrategyRandom)
	other.Seed = 99
	oid, err := other.ID()
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{Version: 1, ID: oid, Spec: other, Done: []CandidateResult{{Gen: 0, Index: 0, Feasible: true}}}
	if err := writeCheckpoint(CheckpointPath(dir, oid), cp); err != nil {
		t.Fatal(err)
	}
	disk, err = m.StatusFromDisk(oid)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Status != StatusInterrupted || disk.ResumedPoints != 1 {
		t.Errorf("partial checkpoint status = %+v, want interrupted/1", disk)
	}
}

func TestManagerBusy(t *testing.T) {
	block := make(chan struct{})
	var blocked atomic.Bool
	slowEval := PointEval(func(ctx context.Context, _ Spec, _ arch.SystemConfig, _ string) (PointMetrics, error) {
		if blocked.CompareAndSwap(false, true) {
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return PointMetrics{FPS: 1, FPSPerWatt: 1, FPSPerMM2: 1, PAP: 1, PowerW: 1, AreaMM2: 1}, nil
	})
	m, err := NewManager(ManagerConfig{Eval: slowEval, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Start(testSpec(StrategyRandom)); err != nil {
		t.Fatal(err)
	}
	other := testSpec(StrategyRandom)
	other.Seed = 1234
	if _, _, err := m.Start(other); !errors.Is(err, ErrBusy) {
		t.Errorf("second search should hit ErrBusy, got %v", err)
	}
	close(block)
}

func TestStreamUpdatesFinalLine(t *testing.T) {
	m, err := NewManager(ManagerConfig{Eval: DirectEval(), Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, _, err := m.Start(testSpec(StrategyRandom))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/optimize", nil)
	lines := 0
	StreamUpdates(rec, req, j, func() { lines++ })
	if lines == 0 {
		t.Fatal("stream produced no lines")
	}
	if ct := rec.Header().Get("Content-Type"); ct != NDJSONContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	dec := json.NewDecoder(rec.Body)
	var last Update
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Type != "done" || last.Status == nil || last.Status.Status != StatusDone {
		t.Errorf("final line = %+v, want done with status", last)
	}
	if len(last.Status.Front) == 0 {
		t.Error("final status carries no front")
	}
}

// TestManagerFailedSearchAndGet: an evaluator error fails the search
// (terminal "failed" with the error preserved), Get finds live jobs by
// ID and rejects unknown ones, and a dirless manager reports
// os.ErrNotExist from StatusFromDisk.
func TestManagerFailedSearchAndGet(t *testing.T) {
	boom := PointEval(func(context.Context, Spec, arch.SystemConfig, string) (PointMetrics, error) {
		return PointMetrics{}, errors.New("eval exploded")
	})
	m, err := NewManager(ManagerConfig{Eval: boom, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, _, err := m.Start(testSpec(StrategyRandom))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Get(j.ID()); !ok || got != j {
		t.Errorf("Get(%q) = (%v, %v), want the started job", j.ID(), got, ok)
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("Get found a job for an unknown ID")
	}
	<-j.Done()
	st := j.Status()
	if st.Status != StatusFailed || !strings.Contains(st.Error, "eval exploded") {
		t.Errorf("failed search status = %q error = %q, want failed/eval exploded", st.Status, st.Error)
	}
	if _, err := m.StatusFromDisk(j.ID()); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("dirless StatusFromDisk error = %v, want os.ErrNotExist", err)
	}
}
