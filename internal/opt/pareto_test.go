package opt

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randVec draws a vector with small-integer coordinates so dominance and
// exact ties both occur often.
func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = float64(rng.Intn(5))
	}
	return v
}

func TestDominatesBasics(t *testing.T) {
	if !Dominates([]float64{2, 2}, []float64{1, 2}) {
		t.Error("(2,2) should dominate (1,2)")
	}
	if Dominates([]float64{2, 1}, []float64{1, 2}) {
		t.Error("(2,1) must not dominate (1,2)")
	}
	if Dominates([]float64{1, 2}, []float64{1, 2}) {
		t.Error("dominance must be irreflexive")
	}
	if Dominates([]float64{1, 2}, []float64{1}) {
		t.Error("mismatched lengths must not dominate")
	}
}

// TestDominatesPartialOrder property-checks that strict dominance is a
// strict partial order: irreflexive, antisymmetric, transitive.
func TestDominatesPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		dim := 2 + rng.Intn(3)
		a, b, c := randVec(rng, dim), randVec(rng, dim), randVec(rng, dim)
		if Dominates(a, a) {
			t.Fatalf("irreflexivity broken for %v", a)
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("antisymmetry broken for %v, %v", a, b)
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity broken for %v, %v, %v", a, b, c)
		}
	}
}

// frontSet returns the front's member vectors as a canonical sorted set
// of encodings — the insertion-order-independent view of front
// membership.
func frontSet(points [][]float64) []string {
	idx := ParetoFront(points)
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		s := ""
		for _, v := range points[i] {
			s += string(rune('a'+int(v))) + ","
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestFrontInvariantUnderInsertionOrder property-checks that the set of
// front member vectors does not depend on the order points are listed.
func TestFrontInvariantUnderInsertionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		points := make([][]float64, n)
		for i := range points {
			points[i] = randVec(rng, 3)
		}
		want := frontSet(points)
		shuffled := make([][]float64, n)
		copy(shuffled, points)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := frontSet(shuffled)
		if len(got) != len(want) {
			t.Fatalf("front size changed under shuffle: %v vs %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("front membership changed under shuffle: %v vs %v", got, want)
			}
		}
	}
}

// TestFrontInvariantUnderObjectivePermutation property-checks that
// permuting the objective axes permutes front members' coordinates but
// never changes which points are in the front.
func TestFrontInvariantUnderObjectivePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		dim := 3
		points := make([][]float64, n)
		for i := range points {
			points[i] = randVec(rng, dim)
		}
		perm := rng.Perm(dim)
		permuted := make([][]float64, n)
		for i, p := range points {
			q := make([]float64, dim)
			for k, pk := range perm {
				q[k] = p[pk]
			}
			permuted[i] = q
		}
		want := ParetoFront(points)
		got := ParetoFront(permuted)
		if len(want) != len(got) {
			t.Fatalf("front size changed under axis permutation: %v vs %v", got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("front membership changed under axis permutation: %v vs %v", got, want)
			}
		}
	}
}

func TestFrontDropsDominatedAndDuplicates(t *testing.T) {
	points := [][]float64{{1, 1}, {2, 2}, {1, 3}, {2, 2}, {0, 0}}
	got := ParetoFront(points)
	want := []int{1, 2}
	if len(got) != len(want) {
		t.Fatalf("front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front = %v, want %v", got, want)
		}
	}
}

func TestHypervolumeKnownValues(t *testing.T) {
	ref := []float64{0, 0}
	// Two rectangles 3x1 and 1x3 overlapping in the unit square.
	hv := Hypervolume([][]float64{{3, 1}, {1, 3}}, ref)
	if math.Abs(hv-5) > 1e-12 {
		t.Errorf("2D hypervolume = %g, want 5", hv)
	}
	// A dominated point adds nothing.
	hv2 := Hypervolume([][]float64{{3, 1}, {1, 3}, {1, 1}}, ref)
	if math.Abs(hv2-5) > 1e-12 {
		t.Errorf("dominated point changed hypervolume: %g", hv2)
	}
	// Points at or below the reference contribute nothing.
	if hv := Hypervolume([][]float64{{0, 5}, {-1, 2}}, ref); hv != 0 {
		t.Errorf("points outside the box contributed %g", hv)
	}
	// 3D cube.
	if hv := Hypervolume([][]float64{{2, 2, 2}}, []float64{0, 0, 0}); math.Abs(hv-8) > 1e-12 {
		t.Errorf("3D hypervolume = %g, want 8", hv)
	}
}

// TestHypervolumeMonotone property-checks that adding a point never
// shrinks the hypervolume.
func TestHypervolumeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := []float64{0, 0, 0}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		}
		base := Hypervolume(points, ref)
		extra := append(points, []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4})
		if grown := Hypervolume(extra, ref); grown < base-1e-9 {
			t.Fatalf("hypervolume shrank from %g to %g when adding a point", base, grown)
		}
	}
}

func TestRankAndCrowd(t *testing.T) {
	spec := Spec{Objectives: []Objective{ObjectiveFPS, ObjectiveFPSPerWatt}}
	recs := []CandidateResult{
		{Feasible: true, Metrics: Metrics{FPS: 3, FPSPerWatt: 1}},
		{Feasible: true, Metrics: Metrics{FPS: 1, FPSPerWatt: 3}},
		{Feasible: true, Metrics: Metrics{FPS: 1, FPSPerWatt: 1}},
		{Invalid: true},
		{Feasible: false, Metrics: Metrics{FPS: 9, FPSPerWatt: 9, AreaMM2: 500}},
	}
	spec.AreaBudgetMM2 = 100
	rank, crowd := rankAndCrowd(spec, recs)
	if rank[0] != 0 || rank[1] != 0 {
		t.Errorf("non-dominated feasible points should rank 0, got %v", rank)
	}
	if rank[2] <= rank[0] {
		t.Errorf("dominated point should rank below the front, got %v", rank)
	}
	if rank[4] <= rank[2] {
		t.Errorf("infeasible point should rank below every feasible one, got %v", rank)
	}
	if rank[3] <= rank[4] {
		t.Errorf("invalid point should rank below infeasible, got %v", rank)
	}
	if !math.IsInf(crowd[0], 1) || !math.IsInf(crowd[1], 1) {
		t.Errorf("boundary points should have infinite crowding, got %v", crowd)
	}
}
