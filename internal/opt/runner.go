package opt

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"refocus/internal/arch"
	"refocus/internal/faults"
	"refocus/internal/nn"
)

// PointMetrics is what a PointEval measures for one design point: the
// four objective geomeans plus the raw power and area the budget
// constraints bind on. Yield is sampled separately by the runner
// (faults.YieldSweep with the candidate's seed), never by the eval.
type PointMetrics struct {
	// FPS, FPSPerWatt, FPSPerMM2 and PAP are geomeans across the spec's
	// networks.
	FPS        float64
	FPSPerWatt float64
	FPSPerMM2  float64
	PAP        float64
	// PowerW is mean total power in watts; AreaMM2 die area in mm².
	PowerW  float64
	AreaMM2 float64
}

// PointEval evaluates one materialized candidate design point. The
// serve tier implements it on top of its cached, admission-controlled
// worker pool; the cluster tier dispatches it across shards by routeKey
// (the candidate's canonical config hash, so a repeated point always
// lands on the shard that already cached it); DirectEval evaluates
// in-process.
type PointEval func(ctx context.Context, spec Spec, cfg arch.SystemConfig, routeKey string) (PointMetrics, error)

// PointMetricsFromReports aggregates per-network reports the way every
// eval tier must: geomean objectives, mean power, first-report area
// (area is a property of the design point, identical across networks).
func PointMetricsFromReports(reports []arch.Report) PointMetrics {
	if len(reports) == 0 {
		return PointMetrics{}
	}
	power := 0.0
	for _, r := range reports {
		power += r.Power.Total()
	}
	return PointMetrics{
		FPS:        arch.GeoMean(reports, arch.MetricFPS),
		FPSPerWatt: arch.GeoMean(reports, arch.MetricFPSPerWatt),
		FPSPerMM2:  arch.GeoMean(reports, arch.MetricFPSPerMM2),
		PAP:        arch.GeoMean(reports, arch.MetricPAP),
		PowerW:     power / float64(len(reports)),
		AreaMM2:    reports[0].Area.Total() / 1e-6,
	}
}

// DirectEval returns a PointEval that evaluates in-process with no
// cache or admission control — unit tests, offline tools and any caller
// that does not sit behind the serving tier.
func DirectEval() PointEval {
	return func(ctx context.Context, spec Spec, cfg arch.SystemConfig, _ string) (PointMetrics, error) {
		nets, err := spec.ResolveNetworks()
		if err != nil {
			return PointMetrics{}, err
		}
		reports, err := arch.EvaluateAllCtx(ctx, cfg, nets)
		if err != nil {
			return PointMetrics{}, err
		}
		return PointMetricsFromReports(reports), nil
	}
}

// FrontPoint is one member of the Pareto front: a feasible design point
// no other evaluated feasible point dominates.
type FrontPoint struct {
	// Gen and Index address the cell that first produced this point.
	Gen   int
	Index int
	// Config names the design point; ConfigHash is its canonical
	// content hash (the result-cache key its evaluation rode).
	Config     string
	ConfigHash string `json:",omitempty"`
	// M, NRFCU, NLambda and Reuses are the design point's searched
	// dimensions.
	M       int
	NRFCU   int
	NLambda int
	Reuses  int
	// Metrics are the point's measured objectives.
	Metrics Metrics
}

// frontPoint projects an evaluated candidate onto the front's wire form.
func frontPoint(r CandidateResult) FrontPoint {
	return FrontPoint{
		Gen:        r.Gen,
		Index:      r.Index,
		Config:     r.Config,
		ConfigHash: r.ConfigHash,
		M:          r.M,
		NRFCU:      r.NRFCU,
		NLambda:    r.NLambda,
		Reuses:     r.Reuses,
		Metrics:    r.Metrics,
	}
}

// computeFront builds the Pareto front from the evaluated-candidate map:
// valid feasible records in canonical (Gen, Index) order, minus
// dominated points and exact objective duplicates. It depends only on
// the record values, never on the order they were computed or which
// process computed them — the byte-identity guarantee after a resume.
// The result is non-nil even when empty (a finished search with no
// feasible point still finished).
func computeFront(spec Spec, done map[cell]CandidateResult) []FrontPoint {
	var recs []CandidateResult
	for _, r := range done {
		if !r.Invalid && r.Feasible {
			recs = append(recs, r)
		}
	}
	sortResults(recs)
	vecs := make([][]float64, len(recs))
	for i, r := range recs {
		vecs[i] = spec.objectiveVector(r.Metrics)
	}
	front := make([]FrontPoint, 0, len(recs))
	for _, i := range ParetoFront(vecs) {
		front = append(front, frontPoint(recs[i]))
	}
	return front
}

// Update is one line of a search's NDJSON incumbent stream.
type Update struct {
	// Type is "point" while the search runs, then a final "done" or
	// "failed" line.
	Type string
	// Completed counts evaluated candidates (resumed included) out of
	// the Total budget bound.
	Completed int
	Total     int
	// Point is the just-evaluated candidate (absent on the
	// resume-progress and final lines).
	Point *CandidateResult `json:",omitempty"`
	// Status carries the full final state on the last line.
	Status *StatusResponse `json:",omitempty"`
}

// Hooks observes search events, letting the serving tier count metrics
// without this package importing it. All fields are optional. Runner
// fires only the point-level hooks; Manager fires the search-level pair.
type Hooks struct {
	// SearchStarted fires when a search job begins running; SearchDone
	// when it finishes (err nil on success).
	SearchStarted func()
	SearchDone    func(err error)
	// PointExecuted fires for every candidate evaluated in this
	// process; PointResumed for every candidate skipped because a
	// checkpoint already held its result.
	PointExecuted func(CandidateResult)
	PointResumed  func(CandidateResult)
}

// Result is a completed search.
type Result struct {
	// ID is the search identity; Spec the defaulted spec it ran.
	ID   string
	Spec Spec
	// Front is the final Pareto front, in canonical (Gen, Index) order.
	Front []FrontPoint
	// Executed counts candidates evaluated in this process, Resumed the
	// ones recovered from the checkpoint; their sum is Completed — a
	// resumed search never recomputes (duplicates) a checkpointed
	// candidate. Completed can fall below the Generations x Population
	// budget bound for strategies that deliberately spend less
	// (successive halving's shrinking rungs).
	Executed  int
	Resumed   int
	Completed int
	// Invalid counts candidates the architecture model rejected;
	// Infeasible the evaluated ones that broke the area/power budgets.
	Invalid    int
	Infeasible int
}

// Runner executes one search: sequential strategy-proposed generations
// evaluated with bounded parallelism, checkpointing after every
// candidate, and per-candidate seeds independent of execution order.
// Fields are read-only once Run starts.
type Runner struct {
	// Spec is the defaulted, validated search spec; ID its identity.
	Spec Spec
	ID   string
	// Dir is the checkpoint directory; "" disables durability.
	Dir string
	// Eval evaluates each candidate design point (required).
	Eval PointEval
	// Parallelism bounds concurrent evaluations; <1 defaults to 2.
	Parallelism int
	// Hooks observes point completion/resume events.
	Hooks Hooks
	// OnUpdate receives incumbent updates as candidates finish (may be
	// nil). Called without internal locks held, possibly concurrently.
	OnUpdate func(Update)
}

// update emits u when a sink is attached.
func (r *Runner) update(u Update) {
	if r.OnUpdate != nil {
		r.OnUpdate(u)
	}
}

// Run executes the search until done, canceled, or the first hard
// error. It loads any existing checkpoint first, replays each
// generation's proposals deterministically, and evaluates only the
// missing cells; the returned front is byte-for-byte the one an
// uninterrupted run with the same spec produces.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	if r.Eval == nil {
		return nil, errors.New("opt: Runner.Eval is required")
	}
	spec := r.Spec
	g, err := newGrid(spec)
	if err != nil {
		return nil, err
	}
	strat, err := strategyFor(spec.Strategy)
	if err != nil {
		return nil, err
	}
	var nets []nn.Network
	if spec.YieldTrials > 0 {
		if nets, err = spec.ResolveNetworks(); err != nil {
			return nil, err
		}
	}
	total := spec.Generations * spec.Population

	done := make(map[cell]CandidateResult, total)
	path := ""
	if r.Dir != "" {
		if err := os.MkdirAll(r.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("opt: checkpoint dir: %w", err)
		}
		path = CheckpointPath(r.Dir, r.ID)
		cp, err := LoadCheckpoint(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume.
		case err != nil:
			return nil, err
		case cp.ID != r.ID:
			return nil, fmt.Errorf("%w: file %s holds %s, want %s", errWrongSearch, path, cp.ID, r.ID)
		default:
			for _, c := range cp.Done {
				if c.Gen >= 0 && c.Gen < spec.Generations && c.Index >= 0 && c.Index < spec.Population {
					done[cell{c.Gen, c.Index}] = c
				}
			}
		}
	}
	resumed := len(done)
	if h := r.Hooks.PointResumed; h != nil {
		for _, c := range done {
			h(c)
		}
	}
	if resumed > 0 {
		r.update(Update{Type: "point", Completed: resumed, Total: total})
	}

	executed := 0
	for gen := 0; gen < spec.Generations; gen++ {
		cands := r.proposals(strat, g, done, gen)
		var pending []int
		for i := range cands {
			if _, ok := done[cell{gen, i}]; !ok {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			continue
		}
		if err := r.runGeneration(ctx, g, nets, gen, cands, pending, done, path, total); err != nil {
			return nil, err
		}
		executed += len(pending)
	}

	res := &Result{
		ID:        r.ID,
		Spec:      spec,
		Front:     computeFront(spec, done),
		Executed:  executed,
		Resumed:   resumed,
		Completed: len(done),
	}
	for _, c := range done {
		switch {
		case c.Invalid:
			res.Invalid++
		case !c.Feasible:
			res.Infeasible++
		}
	}
	if path != "" {
		if err := writeCheckpoint(path, r.checkpoint(done, res.Front)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// proposals replays generation gen's candidate list: a deterministic
// function of (spec, strategy, history), which is what lets a resumed
// search re-derive the exact schedule its checkpointed cells belong to.
func (r *Runner) proposals(strat Strategy, g *grid, done map[cell]CandidateResult, gen int) []Candidate {
	var hist []CandidateResult
	for _, c := range done {
		if c.Gen < gen {
			hist = append(hist, c)
		}
	}
	sortResults(hist)
	pc := ProposalContext{
		Spec:    r.Spec,
		Dims:    g.dims(),
		Gen:     gen,
		Budget:  r.Spec.Population,
		History: hist,
		grid:    g,
	}
	rng := rand.New(rand.NewSource(generationSeed(r.Spec.Seed, gen)))
	cands := strat.Propose(rng, pc)
	if len(cands) > r.Spec.Population {
		cands = cands[:r.Spec.Population]
	}
	for i := range cands {
		cands[i] = g.clamp(cands[i])
	}
	return cands
}

// runGeneration evaluates one generation's pending cells with bounded
// workers, checkpointing after every candidate.
func (r *Runner) runGeneration(ctx context.Context, g *grid, nets []nn.Network, gen int, cands []Candidate, pending []int, done map[cell]CandidateResult, path string, total int) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	workers := r.Parallelism
	if workers < 1 {
		workers = 2
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				c, err := r.runPoint(cctx, g, nets, gen, idx, cands[idx])
				var u Update
				mu.Lock()
				if err != nil {
					fail(err)
					mu.Unlock()
					continue
				}
				done[cell{gen, idx}] = c
				u = Update{Type: "point", Completed: len(done), Total: total, Point: &c}
				if path != "" {
					if werr := writeCheckpoint(path, r.checkpoint(done, nil)); werr != nil {
						fail(werr)
					}
				}
				mu.Unlock()
				if h := r.Hooks.PointExecuted; h != nil {
					h(c)
				}
				r.update(u)
			}
		}()
	}
feed:
	for _, idx := range pending {
		select {
		case next <- idx:
		case <-cctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// checkpoint assembles the durable state from the evaluated-cell map.
func (r *Runner) checkpoint(done map[cell]CandidateResult, front []FrontPoint) *Checkpoint {
	cp := &Checkpoint{
		Version: checkpointVersion,
		ID:      r.ID,
		Spec:    r.Spec,
		Done:    make([]CandidateResult, 0, len(done)),
		Front:   front,
	}
	for _, c := range done {
		cp.Done = append(cp.Done, c)
	}
	sortResults(cp.Done)
	return cp
}

// runPoint evaluates one (generation, index) cell: materialize the
// candidate (an architecturally invalid point is recorded, not fatal —
// the strategy learns the hole in the space), measure its objectives via
// Eval, sample yield when the spec asks for it, and check feasibility.
func (r *Runner) runPoint(ctx context.Context, g *grid, nets []nn.Network, gen, idx int, cand Candidate) (CandidateResult, error) {
	if err := ctx.Err(); err != nil {
		return CandidateResult{}, err
	}
	m, n, l, reuses := g.values(cand)
	c := CandidateResult{
		Gen:       gen,
		Index:     idx,
		Candidate: cand,
		Seed:      CandidateSeed(r.Spec.Seed, gen, idx),
		M:         m,
		NRFCU:     n,
		NLambda:   l,
		Reuses:    reuses,
	}
	cfg, err := g.config(cand)
	if err != nil {
		c.Invalid = true
		c.Note = err.Error()
		return c, nil
	}
	c.Config = cfg.Name
	hash, err := arch.ConfigHash(cfg)
	if err != nil {
		return CandidateResult{}, fmt.Errorf("opt: cell (%d,%d): %w", gen, idx, err)
	}
	c.ConfigHash = hash

	pm, err := r.Eval(ctx, r.Spec, cfg, hash)
	if err != nil {
		return CandidateResult{}, fmt.Errorf("opt: cell (%d,%d) %s: %w", gen, idx, cfg.Name, err)
	}
	c.Metrics = Metrics{
		FPS:        pm.FPS,
		FPSPerWatt: pm.FPSPerWatt,
		FPSPerMM2:  pm.FPSPerMM2,
		PAP:        pm.PAP,
		PowerW:     pm.PowerW,
		AreaMM2:    pm.AreaMM2,
	}
	if r.Spec.YieldTrials > 0 {
		yr, err := faults.YieldSweep(ctx, cfg, nets, r.Spec.Model, r.Spec.YieldTrials, c.Seed)
		if err != nil {
			return CandidateResult{}, fmt.Errorf("opt: cell (%d,%d) yield: %w", gen, idx, err)
		}
		c.Metrics.Yield = float64(yr.Trials-yr.Failed) / float64(yr.Trials)
	}
	c.Feasible = r.Spec.feasible(c.Metrics)
	return c, nil
}
