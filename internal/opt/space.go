package opt

import (
	"fmt"
	"math/rand"

	"refocus/internal/arch"
)

// grid is a spec's resolved search space: the base design point plus the
// four axis value lists, in Candidate index order.
type grid struct {
	base arch.SystemConfig
	axes [NumAxes][]int
}

// newGrid resolves the spec's base config and axis lists. Call on the
// defaulted, validated form.
func newGrid(s Spec) (*grid, error) {
	base, err := s.ResolveConfig()
	if err != nil {
		return nil, err
	}
	return &grid{
		base: base,
		axes: [NumAxes][]int{s.Space.M, s.Space.NRFCU, s.Space.NLambda, s.Space.Reuses},
	}, nil
}

// dims returns the axis lengths.
func (g *grid) dims() [NumAxes]int {
	var d [NumAxes]int
	for i := range g.axes {
		d[i] = len(g.axes[i])
	}
	return d
}

// clamp forces every index of c into its axis range.
func (g *grid) clamp(c Candidate) Candidate {
	for i := range c {
		if c[i] < 0 {
			c[i] = 0
		}
		if c[i] >= len(g.axes[i]) {
			c[i] = len(g.axes[i]) - 1
		}
	}
	return c
}

// values resolves a candidate's axis indices to (M, NRFCU, NLambda,
// Reuses) values.
func (g *grid) values(c Candidate) (m, n, l, r int) {
	c = g.clamp(c)
	return g.axes[0][c[0]], g.axes[1][c[1]], g.axes[2][c[2]], g.axes[3][c[3]]
}

// config materializes a candidate as a named, validated design point.
// The name depends only on the axis values — never on the search — so
// the same point proposed by two different searches shares one canonical
// config hash and therefore one result-cache entry.
func (g *grid) config(c Candidate) (arch.SystemConfig, error) {
	m, n, l, r := g.values(c)
	cfg := g.base
	cfg.Name = fmt.Sprintf("opt-M%d-N%d-L%d-R%d", m, n, l, r)
	cfg.M = m
	cfg.NRFCU = n
	cfg.NLambda = l
	cfg.Reuses = r
	if err := cfg.Validate(); err != nil {
		return arch.SystemConfig{}, err
	}
	return cfg, nil
}

// random draws a uniform candidate.
func (g *grid) random(rng *rand.Rand) Candidate {
	var c Candidate
	for i := range c {
		c[i] = rng.Intn(len(g.axes[i]))
	}
	return c
}

// neighbor moves one uniformly chosen axis of c a single step up or
// down, clamped to the grid — the annealing move and the evolutionary
// mutation step.
func (g *grid) neighbor(rng *rand.Rand, c Candidate) Candidate {
	axis := rng.Intn(NumAxes)
	if rng.Intn(2) == 0 {
		c[axis]++
	} else {
		c[axis]--
	}
	return g.clamp(c)
}
