package opt

import (
	"math"
	"math/rand"
)

// annealStrategy is multi-objective simulated annealing: Budget
// independent walkers, each scalarizing the objectives with its own
// fixed random weight vector (a classic way to spread walkers across a
// Pareto front) and following Metropolis acceptance under geometric
// cooling. Walkers are stateless between calls — each Propose replays a
// walker's accept/reject chain from the evaluated history, so a resumed
// search reconstructs the exact walker states an uninterrupted run had.
type annealStrategy struct{}

// Name returns "anneal".
func (annealStrategy) Name() string { return StrategyAnneal }

// Annealing schedule: energies are normalized into [0,1], the initial
// temperature accepts most uphill moves, and each generation cools
// geometrically.
const (
	annealT0   = 0.5
	annealCool = 0.8
)

// annealSalt offsets the index argument of CandidateSeed for the
// strategy's internal RNG streams (walker weights, acceptance draws), so
// they never collide with the candidate seeds that drive yield sweeps.
const annealSalt = 1 << 28

// Propose returns a random first generation, then one neighbor proposal
// per walker from its replayed current state.
func (annealStrategy) Propose(rng *rand.Rand, pc ProposalContext) []Candidate {
	if pc.Gen == 0 || len(pc.History) == 0 {
		return randomStrategy{}.Propose(rng, pc)
	}
	byCell := pc.byCell()
	lo, hi := objectiveBounds(pc.Spec, pc.History)
	out := make([]Candidate, pc.Budget)
	for w := range out {
		weights := walkerWeights(pc.Spec, w)
		energy := func(r CandidateResult, ok bool) float64 {
			if !ok || r.Invalid {
				return math.Inf(1)
			}
			if !r.Feasible {
				// Infeasible points sit above every feasible energy
				// (which lives in [-1, 0]), ordered by violation.
				return 1 + pc.Spec.violation(r.Metrics)
			}
			vec := pc.Spec.objectiveVector(r.Metrics)
			e := 0.0
			for i, v := range vec {
				if hi[i] > lo[i] {
					e -= weights[i] * (v - lo[i]) / (hi[i] - lo[i])
				}
			}
			return e
		}

		// Replay the walker's Metropolis chain over the completed
		// generations to recover its current state.
		state, ok := byCell[cell{0, w}]
		cur := energy(state, ok)
		for g := 1; g < pc.Gen; g++ {
			prop, ok := byCell[cell{g, w}]
			if !ok {
				continue
			}
			e := energy(prop, true)
			temp := annealT0 * math.Pow(annealCool, float64(g-1))
			accept := e <= cur
			if !accept && !math.IsInf(e, 1) {
				draw := rand.New(rand.NewSource(CandidateSeed(pc.Spec.Seed, g, w+annealSalt)))
				accept = draw.Float64() < math.Exp(-(e-cur)/temp)
			}
			if accept {
				state, ok = prop, true
				cur = e
			}
		}
		if !ok {
			out[w] = pc.Random(rng)
			continue
		}
		out[w] = pc.Neighbor(rng, state.Candidate)
	}
	return out
}

// walkerWeights derives walker w's fixed scalarization weights (summing
// to 1) purely from the spec seed, so they survive restarts.
func walkerWeights(spec Spec, w int) []float64 {
	rng := rand.New(rand.NewSource(CandidateSeed(spec.Seed, -1, w+annealSalt)))
	weights := make([]float64, len(spec.Objectives))
	sum := 0.0
	for i := range weights {
		weights[i] = 0.05 + rng.Float64()
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights
}

// objectiveBounds returns the per-objective min and max over the valid
// feasible history, used to normalize energies. Degenerate or empty
// bounds leave hi == lo, which the energy function treats as "axis
// contributes nothing".
func objectiveBounds(spec Spec, hist []CandidateResult) (lo, hi []float64) {
	n := len(spec.Objectives)
	lo = make([]float64, n)
	hi = make([]float64, n)
	first := true
	for _, r := range hist {
		if r.Invalid || !r.Feasible {
			continue
		}
		vec := spec.objectiveVector(r.Metrics)
		for i, v := range vec {
			if first || v < lo[i] {
				lo[i] = v
			}
			if first || v > hi[i] {
				hi[i] = v
			}
		}
		first = false
	}
	return lo, hi
}
