package opt

import (
	"strings"
	"testing"
)

func TestWithDefaults(t *testing.T) {
	s := Spec{Preset: "fb"}.WithDefaults()
	if s.Network != DefaultNetwork {
		t.Errorf("Network = %q, want %q", s.Network, DefaultNetwork)
	}
	if s.Strategy != StrategyEvolve {
		t.Errorf("Strategy = %q, want evolve", s.Strategy)
	}
	if s.Generations != DefaultGenerations || s.Population != DefaultPopulation {
		t.Errorf("budget = %dx%d, want defaults", s.Generations, s.Population)
	}
	if len(s.Objectives) != 4 {
		t.Errorf("Objectives = %v, want the four throughput axes", s.Objectives)
	}
	if len(s.Space.M) == 0 || len(s.Space.NRFCU) == 0 || len(s.Space.NLambda) == 0 || len(s.Space.Reuses) == 0 {
		t.Errorf("Space axes not defaulted: %+v", s.Space)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
}

func TestWithDefaultsYieldObjective(t *testing.T) {
	s := Spec{Preset: "fb", YieldTrials: 8}.WithDefaults()
	found := false
	for _, o := range s.Objectives {
		if o == ObjectiveYield {
			found = true
		}
	}
	if !found {
		t.Errorf("YieldTrials > 0 should add the yield objective, got %v", s.Objectives)
	}
	var zero = s.Model
	if zero.RFCUFailProb == 0 && zero.WavelengthFailProb == 0 && zero.BufferLossSigmaDB == 0 {
		t.Error("yield search should default the fault model")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted yield spec invalid: %v", err)
	}
}

func TestWithDefaultsCollapsesReusesForNonFeedback(t *testing.T) {
	s := Spec{Preset: "ff"}.WithDefaults()
	if len(s.Space.Reuses) != 1 {
		t.Errorf("feedforward base should collapse the Reuses axis, got %v", s.Space.Reuses)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("collapsed spec invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Spec { return Spec{Preset: "fb"}.WithDefaults() }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no design point", func(s *Spec) { s.Preset = "" }, "must name a Preset"},
		{"both preset and config", func(s *Spec) { s.Config = []byte("{}") }, "pick one"},
		{"bad preset", func(s *Spec) { s.Preset = "nope" }, "nope"},
		{"bad network", func(s *Spec) { s.Network = "nope" }, "nope"},
		{"unknown objective", func(s *Spec) { s.Objectives = []Objective{"speed"} }, "unknown objective"},
		{"repeated objective", func(s *Spec) { s.Objectives = []Objective{ObjectiveFPS, ObjectiveFPS} }, "repeated"},
		{"yield without trials", func(s *Spec) { s.Objectives = []Objective{ObjectiveYield} }, "YieldTrials"},
		{"unknown strategy", func(s *Spec) { s.Strategy = "magic" }, "unknown strategy"},
		{"zero generations", func(s *Spec) { s.Generations = -1 }, "Generations"},
		{"tiny population", func(s *Spec) { s.Population = 1 }, "Population"},
		{"budget blowout", func(s *Spec) { s.Generations = 64; s.Population = 256 }, "exceeds"},
		{"empty axis", func(s *Spec) { s.Space.M = nil }, "Space.M"},
		{"repeated axis value", func(s *Spec) { s.Space.M = []int{8, 8} }, "repeats"},
		{"negative axis value", func(s *Spec) { s.Space.NRFCU = []int{-4} }, "positive"},
		{"negative area budget", func(s *Spec) { s.AreaBudgetMM2 = -1 }, "AreaBudgetMM2"},
		{"negative power budget", func(s *Spec) { s.PowerBudgetW = -1 }, "PowerBudgetW"},
		{"yield trials blowout", func(s *Spec) { s.YieldTrials = 100000 }, "YieldTrials"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestIDStableAndDiscriminating(t *testing.T) {
	a := Spec{Preset: "fb", Seed: 7}.WithDefaults()
	b := Spec{Preset: "fb", Seed: 7}.WithDefaults()
	idA, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := b.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Errorf("identical specs got different IDs: %s vs %s", idA, idB)
	}
	// The preset alias and the canonical name are the same design point.
	c := Spec{Preset: "ReFOCUS-FB", Seed: 7}.WithDefaults()
	idC, err := c.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idC != idA {
		t.Errorf("preset alias changed the ID: %s vs %s", idC, idA)
	}
	// Any knob that changes the search changes the ID.
	for name, mut := range map[string]func(*Spec){
		"seed":     func(s *Spec) { s.Seed = 8 },
		"strategy": func(s *Spec) { s.Strategy = StrategyRandom },
		"budget":   func(s *Spec) { s.Population = 32 },
		"area":     func(s *Spec) { s.AreaBudgetMM2 = 150 },
	} {
		s := Spec{Preset: "fb", Seed: 7}.WithDefaults()
		mut(&s)
		id, err := s.ID()
		if err != nil {
			t.Fatal(err)
		}
		if id == idA {
			t.Errorf("changing %s did not change the ID", name)
		}
	}
}

func TestCandidateSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for gen := 0; gen < 8; gen++ {
		for idx := 0; idx < 16; idx++ {
			s := CandidateSeed(42, gen, idx)
			if s != CandidateSeed(42, gen, idx) {
				t.Fatal("CandidateSeed is not a pure function")
			}
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", gen, idx)
			}
			seen[s] = true
		}
	}
	if CandidateSeed(1, 0, 0) == CandidateSeed(2, 0, 0) {
		t.Error("different root seeds should give different cell seeds")
	}
}

func TestViolationAndFeasible(t *testing.T) {
	s := Spec{AreaBudgetMM2: 100, PowerBudgetW: 10}
	if !s.feasible(Metrics{AreaMM2: 100, PowerW: 10}) {
		t.Error("at-budget point should be feasible")
	}
	if s.feasible(Metrics{AreaMM2: 150, PowerW: 5}) {
		t.Error("over-area point should be infeasible")
	}
	v := s.violation(Metrics{AreaMM2: 150, PowerW: 20})
	if v <= 0.5 || v >= 2.5 {
		t.Errorf("violation = %g, want relative overshoot sum 1.5", v)
	}
	if un := (Spec{}); !un.feasible(Metrics{AreaMM2: 1e9, PowerW: 1e9}) {
		t.Error("unconstrained spec should accept everything")
	}
}
