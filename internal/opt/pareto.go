package opt

import (
	"math"
	"sort"
)

// Dominates reports whether objective vector a strictly Pareto-dominates
// b: a is at least as good on every axis and strictly better on at least
// one. All axes are maximized. It is a strict partial order —
// irreflexive, antisymmetric and transitive — over equal-length vectors.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated points, in input
// order. Exact duplicates of an earlier member are excluded, so the
// front is a set of distinct objective vectors: membership depends only
// on the multiset of points, not on insertion order (up to which
// duplicate representative survives).
func ParetoFront(points [][]float64) []int {
	var front []int
	for i, p := range points {
		keep := true
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				keep = false
				break
			}
			if j < i && vecEqual(q, p) {
				keep = false
				break
			}
		}
		if keep {
			front = append(front, i)
		}
	}
	return front
}

// vecEqual reports exact element-wise equality.
func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hypervolume returns the volume of objective space dominated by points
// and bounded below by ref (all axes maximized): the standard indicator
// for comparing whole fronts — a larger hypervolume means a front that
// is better, wider, or both. Points not strictly above ref on every axis
// contribute nothing. Exact dimension-sweep computation; exponential in
// the axis count in the worst case, fine for the ≤5 objectives specs
// can express.
func Hypervolume(points [][]float64, ref []float64) float64 {
	var boxed [][]float64
	for _, p := range points {
		if len(p) != len(ref) {
			continue
		}
		above := true
		for i := range p {
			if p[i] <= ref[i] {
				above = false
				break
			}
		}
		if above {
			boxed = append(boxed, p)
		}
	}
	return hvRecurse(boxed, ref, len(ref))
}

// hvRecurse computes the hypervolume of the first d coordinates by
// slicing along axis d-1: sort descending, and each slab between
// consecutive coordinate values contributes its height times the
// (d-1)-dimensional hypervolume of the points above it.
func hvRecurse(points [][]float64, ref []float64, d int) float64 {
	if len(points) == 0 {
		return 0
	}
	if d == 1 {
		best := 0.0
		for _, p := range points {
			if v := p[0] - ref[0]; v > best {
				best = v
			}
		}
		return best
	}
	sorted := make([][]float64, len(points))
	copy(sorted, points)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i][d-1] > sorted[j][d-1] })
	total := 0.0
	for i := range sorted {
		lower := ref[d-1]
		if i+1 < len(sorted) {
			lower = sorted[i+1][d-1]
		}
		if h := sorted[i][d-1] - lower; h > 0 {
			total += h * hvRecurse(sorted[:i+1], ref, d-1)
		}
	}
	return total
}

// dominatesRec is constraint domination between two evaluated candidates
// (Deb's rules): a valid point beats an invalid one, a feasible point
// beats an infeasible one, infeasible points compare by budget violation
// (strictly smaller dominates), and feasible points compare by Pareto
// dominance on the spec's objectives.
func dominatesRec(spec Spec, a, b CandidateResult) bool {
	switch {
	case a.Invalid:
		return false
	case b.Invalid:
		return true
	case a.Feasible && !b.Feasible:
		return true
	case !a.Feasible && b.Feasible:
		return false
	case !a.Feasible:
		return spec.violation(a.Metrics) < spec.violation(b.Metrics)
	default:
		return Dominates(spec.objectiveVector(a.Metrics), spec.objectiveVector(b.Metrics))
	}
}

// rankAndCrowd performs NSGA-II non-dominated sorting with constraint
// domination: rank[i] is the index of the front record i falls in
// (0 = best), crowd[i] its crowding distance within that front (larger =
// more isolated; boundary points get +Inf). Used by the evolutionary
// and halving strategies to order survivors.
func rankAndCrowd(spec Spec, recs []CandidateResult) (rank []int, crowd []float64) {
	n := len(recs)
	rank = make([]int, n)
	crowd = make([]float64, n)
	dominated := make([]int, n)   // how many records dominate i
	dominates := make([][]int, n) // records i dominates
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesRec(spec, recs[i], recs[j]) {
				dominates[i] = append(dominates[i], j)
			} else if dominatesRec(spec, recs[j], recs[i]) {
				dominated[i]++
			}
		}
	}
	var current []int
	for i := 0; i < n; i++ {
		if dominated[i] == 0 {
			current = append(current, i)
		}
	}
	for r := 0; len(current) > 0; r++ {
		var next []int
		for _, i := range current {
			rank[i] = r
			for _, j := range dominates[i] {
				dominated[j]--
				if dominated[j] == 0 {
					next = append(next, j)
				}
			}
		}
		crowdFront(spec, recs, current, crowd)
		current = next
	}
	return rank, crowd
}

// crowdFront fills crowding distances for one front (indices into recs).
func crowdFront(spec Spec, recs []CandidateResult, front []int, crowd []float64) {
	if len(front) <= 2 {
		for _, i := range front {
			crowd[i] = math.Inf(1)
		}
		return
	}
	nObj := len(spec.Objectives)
	order := make([]int, len(front))
	for k := 0; k < nObj; k++ {
		copy(order, front)
		sort.SliceStable(order, func(a, b int) bool {
			return spec.objectiveVector(recs[order[a]].Metrics)[k] < spec.objectiveVector(recs[order[b]].Metrics)[k]
		})
		lo := spec.objectiveVector(recs[order[0]].Metrics)[k]
		hi := spec.objectiveVector(recs[order[len(order)-1]].Metrics)[k]
		crowd[order[0]] = math.Inf(1)
		crowd[order[len(order)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for x := 1; x < len(order)-1; x++ {
			prev := spec.objectiveVector(recs[order[x-1]].Metrics)[k]
			next := spec.objectiveVector(recs[order[x+1]].Metrics)[k]
			crowd[order[x]] += (next - prev) / (hi - lo)
		}
	}
}
