package opt

import (
	"fmt"
	"math/rand"
)

// Strategy vocabulary: the values Spec.Strategy accepts.
const (
	// StrategyRandom is uniform random sampling — the baseline every
	// other strategy must beat on hypervolume.
	StrategyRandom = "random"
	// StrategyAnneal is multi-objective simulated annealing: a
	// population of independent walkers, each following Metropolis
	// acceptance on its own scalarization of the objectives under a
	// geometric cooling schedule.
	StrategyAnneal = "anneal"
	// StrategyEvolve is an NSGA-II-style evolutionary search:
	// non-dominated sorting plus crowding distance drive binary
	// tournament selection, uniform crossover and single-step mutation.
	StrategyEvolve = "evolve"
	// StrategyHalving is successive halving: each rung keeps the best
	// half of the previous rung (by constrained non-dominated rank) and
	// spends its shrinking budget refining around the survivors.
	StrategyHalving = "halving"
)

// Strategies lists the registered strategy names, in a fixed order.
func Strategies() []string {
	return []string{StrategyRandom, StrategyAnneal, StrategyEvolve, StrategyHalving}
}

// ProposalContext is everything a Strategy sees when proposing one
// generation. Proposals must be a pure function of the context and the
// provided RNG (which the runner seeds from (Spec.Seed, Gen)): a resumed
// search re-proposes every generation from its checkpointed history, and
// determinism here is what makes the resumed front byte-identical.
type ProposalContext struct {
	// Spec is the defaulted, validated search spec.
	Spec Spec
	// Dims are the axis lengths of the searched grid, in Candidate
	// index order.
	Dims [NumAxes]int
	// Gen is the generation being proposed.
	Gen int
	// Budget caps the number of candidates this generation may return;
	// strategies may propose fewer (successive halving does) but never
	// more — the runner truncates excess.
	Budget int
	// History holds every candidate evaluated in earlier generations,
	// in canonical (Gen, Index) order.
	History []CandidateResult

	grid *grid
}

// Random draws a uniform candidate from the grid.
func (pc ProposalContext) Random(rng *rand.Rand) Candidate { return pc.grid.random(rng) }

// Neighbor moves one uniformly chosen axis of c a single step, clamped
// to the grid.
func (pc ProposalContext) Neighbor(rng *rand.Rand, c Candidate) Candidate {
	return pc.grid.neighbor(rng, c)
}

// Clamp forces every index of c into its axis range.
func (pc ProposalContext) Clamp(c Candidate) Candidate { return pc.grid.clamp(c) }

// cell addresses one (generation, index) slot of the search schedule.
type cell struct {
	gen, index int
}

// byCell indexes the history by schedule cell.
func (pc ProposalContext) byCell() map[cell]CandidateResult {
	m := make(map[cell]CandidateResult, len(pc.History))
	for _, r := range pc.History {
		m[cell{r.Gen, r.Index}] = r
	}
	return m
}

// Strategy proposes each generation's candidates from the evaluated
// history. Implementations are stateless: everything a proposal depends
// on must come from the ProposalContext and the passed RNG, so that a
// resumed search reconstructs identical proposals from its checkpoint.
type Strategy interface {
	// Name returns the Spec.Strategy vocabulary name.
	Name() string
	// Propose returns generation pc.Gen's candidates, at most pc.Budget
	// of them.
	Propose(rng *rand.Rand, pc ProposalContext) []Candidate
}

// strategyFor resolves a Spec.Strategy name.
func strategyFor(name string) (Strategy, error) {
	switch name {
	case StrategyRandom:
		return randomStrategy{}, nil
	case StrategyAnneal:
		return annealStrategy{}, nil
	case StrategyEvolve:
		return evolveStrategy{}, nil
	case StrategyHalving:
		return halvingStrategy{}, nil
	default:
		return nil, fmt.Errorf("opt: unknown strategy %q (have %v)", name, Strategies())
	}
}

// randomStrategy samples the grid uniformly — no learning, the
// hypervolume baseline.
type randomStrategy struct{}

// Name returns "random".
func (randomStrategy) Name() string { return StrategyRandom }

// Propose draws Budget uniform candidates.
func (randomStrategy) Propose(rng *rand.Rand, pc ProposalContext) []Candidate {
	out := make([]Candidate, pc.Budget)
	for i := range out {
		out[i] = pc.Random(rng)
	}
	return out
}
