package opt

import (
	"context"
	"testing"
)

// BenchmarkOptimizeStep measures one full search step — deterministic
// proposal plus in-process evaluation of an 8-candidate generation on
// ResNet-50 — the unit of work /v1/optimize repeats per generation.
func BenchmarkOptimizeStep(b *testing.B) {
	spec := Spec{
		Preset:      "fb",
		Network:     "ResNet-50",
		Strategy:    StrategyRandom,
		Generations: 1,
		Population:  8,
		Seed:        7,
	}.WithDefaults()
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	id, err := spec.ID()
	if err != nil {
		b.Fatal(err)
	}
	eval := DirectEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Spec: spec, ID: id, Eval: eval, Parallelism: 4}
		if _, err := r.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
