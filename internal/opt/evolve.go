package opt

import "math/rand"

// evolveStrategy is the NSGA-II-style evolutionary search: parents are
// drawn from the whole evaluated history by binary tournament on
// (non-dominated rank, crowding distance), children are uniform
// crossovers with per-axis single-step mutation. The history doubles as
// the elite archive — the front is always computed over every evaluated
// point, so nothing is ever lost to generational replacement.
type evolveStrategy struct{}

// Name returns "evolve".
func (evolveStrategy) Name() string { return StrategyEvolve }

// mutationRate is the per-axis probability of a single-step mutation —
// one expected mutated axis per child.
const mutationRate = 1.0 / NumAxes

// immigrantFraction is the share of each generation drawn uniformly at
// random instead of bred: on a small discrete grid, pure exploitation
// collapses onto a few cells and loses front width (and hypervolume) to
// plain random sampling, so every generation keeps exploring.
const immigrantFraction = 0.25

// Propose returns an anchored first generation (grid corners plus
// random fill), then Budget children of the evaluated history: bred by
// binary tournament or from per-objective axis champions, plus a
// random-immigrant tail.
func (evolveStrategy) Propose(rng *rand.Rand, pc ProposalContext) []Candidate {
	if pc.Gen == 0 || len(pc.History) == 0 {
		out := make([]Candidate, pc.Budget)
		for i := range out {
			out[i] = pc.Random(rng)
		}
		// Deterministic anchors: the all-min and all-max grid corners.
		// Hypervolume lives or dies on front width, and the extreme
		// resource corners (which random sampling rarely lands on
		// exactly) anchor the throughput and efficiency ends of it.
		if pc.Budget >= 2 {
			var lo, hi Candidate
			for ax := 0; ax < NumAxes; ax++ {
				hi[ax] = pc.Dims[ax] - 1
			}
			out[0], out[1] = lo, hi
		}
		return out
	}
	rank, crowd := rankAndCrowd(pc.Spec, pc.History)
	tournament := func() Candidate {
		a, b := rng.Intn(len(pc.History)), rng.Intn(len(pc.History))
		if rank[b] < rank[a] || (rank[b] == rank[a] && crowd[b] > crowd[a]) {
			a = b
		}
		return pc.History[a].Candidate
	}
	champions := axisChampions(pc.Spec, pc.History)
	parent := func() Candidate {
		// Half the picks breed from an axis champion — the history
		// point best on one objective — pushing the front's corners
		// outward; the rest follow NSGA-II tournament pressure.
		if len(champions) > 0 && rng.Intn(2) == 0 {
			return champions[rng.Intn(len(champions))]
		}
		return tournament()
	}
	out := make([]Candidate, pc.Budget)
	immigrants := int(float64(pc.Budget) * immigrantFraction)
	for i := range out {
		if i >= pc.Budget-immigrants {
			out[i] = pc.Random(rng)
			continue
		}
		p1, p2 := parent(), parent()
		var child Candidate
		for ax := 0; ax < NumAxes; ax++ {
			if rng.Intn(2) == 0 {
				child[ax] = p1[ax]
			} else {
				child[ax] = p2[ax]
			}
		}
		for ax := 0; ax < NumAxes; ax++ {
			if rng.Float64() < mutationRate {
				if rng.Intn(2) == 0 {
					child[ax]++
				} else {
					child[ax]--
				}
			}
		}
		out[i] = pc.Clamp(child)
	}
	return out
}

// axisChampions returns, per objective, the valid feasible history
// candidate with the best value on that axis alone (canonical-order
// first on ties, so the set is deterministic).
func axisChampions(spec Spec, hist []CandidateResult) []Candidate {
	var champs []Candidate
	for k := range spec.Objectives {
		best := -1
		bestV := 0.0
		for i, r := range hist {
			if r.Invalid || !r.Feasible {
				continue
			}
			if v := spec.objectiveVector(r.Metrics)[k]; best < 0 || v > bestV {
				best, bestV = i, v
			}
		}
		if best >= 0 {
			champs = append(champs, hist[best].Candidate)
		}
	}
	return champs
}
