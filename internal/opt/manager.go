package opt

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrBusy reports that the manager is already running its maximum number
// of concurrent searches; the serving tier maps it to 429 with a
// Retry-After, mirroring worker-slot shedding.
var ErrBusy = errors.New("opt: too many active searches")

// Status is a search lifecycle state as reported by StatusResponse.
type Status string

// Search lifecycle states. StatusInterrupted is only ever reported from
// disk: a checkpoint exists but no live job does, i.e. the process died
// mid-search and re-submitting the spec will resume it.
const (
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusInterrupted Status = "interrupted"
)

// StatusResponse is the wire form of a search's state, served by
// GET /v1/optimize/{id} and embedded in the final stream line.
type StatusResponse struct {
	// ID is the search identity; Name the spec's optional label.
	ID   string `json:",omitempty"`
	Name string `json:",omitempty"`
	// Strategy is the spec's search strategy.
	Strategy string `json:",omitempty"`
	// Status is the lifecycle state.
	Status Status
	// TotalPoints is the budget bound (generations × population);
	// CompletedPoints how many candidates are evaluated — below the
	// bound for strategies that deliberately spend less (successive
	// halving) — split into ExecutedPoints (computed by a live process)
	// and ResumedPoints (recovered from the checkpoint).
	TotalPoints     int
	CompletedPoints int
	ExecutedPoints  int
	ResumedPoints   int
	// InvalidPoints counts candidates the architecture model rejected;
	// InfeasiblePoints the evaluated ones that broke the budgets.
	InvalidPoints    int
	InfeasiblePoints int
	// Front is the Pareto front: final on done searches, incumbent
	// (over the candidates evaluated so far) while running.
	Front []FrontPoint `json:",omitempty"`
	// Error explains a failed search.
	Error string `json:",omitempty"`
}

// ManagerConfig configures a Manager.
type ManagerConfig struct {
	// Dir is the checkpoint directory; "" runs searches without
	// durability (they cannot survive a restart).
	Dir string
	// Eval evaluates candidate design points (required).
	Eval PointEval
	// Parallelism bounds concurrent evaluations per search; <1 defaults
	// to 2.
	Parallelism int
	// MaxActive bounds concurrently running searches; <1 defaults to 2.
	MaxActive int
	// Hooks observes search and point events (metrics counters).
	Hooks Hooks
}

// Manager owns search jobs for a serving process: it starts them,
// deduplicates re-submissions by search identity, exposes status for
// live and on-disk searches, and cancels everything on Close.
type Manager struct {
	cfg    ManagerConfig
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*Job
	wg   sync.WaitGroup
}

// NewManager builds a Manager, creating the checkpoint directory if
// configured.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Eval == nil {
		return nil, errors.New("opt: ManagerConfig.Eval is required")
	}
	if cfg.MaxActive < 1 {
		cfg.MaxActive = 2
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("opt: search dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{cfg: cfg, ctx: ctx, cancel: cancel, jobs: make(map[string]*Job)}, nil
}

// Start launches a search for spec, or attaches to the already-running
// job with the same identity (created reports which). A spec whose
// checkpoint exists on disk resumes from it. Returns ErrBusy when
// MaxActive searches are already running.
func (m *Manager) Start(spec Spec) (job *Job, created bool, err error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("opt: manager closed: %w", err)
	}
	if j, ok := m.jobs[id]; ok && !j.finished() {
		return j, false, nil
	}
	active := 0
	for _, j := range m.jobs {
		if !j.finished() {
			active++
		}
	}
	if active >= m.cfg.MaxActive {
		return nil, false, ErrBusy
	}

	j := newJob(id, spec)
	m.jobs[id] = j
	m.wg.Add(1)
	go m.run(j)
	return j, true, nil
}

// Get returns the live job with the given search ID, if any.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// StatusFromDisk reads a search's checkpoint and reports it as "done"
// (front present) or "interrupted" (partial — resubmitting the spec
// resumes it). A missing checkpoint returns an error satisfying
// errors.Is(err, os.ErrNotExist).
func (m *Manager) StatusFromDisk(id string) (StatusResponse, error) {
	if m.cfg.Dir == "" {
		return StatusResponse{}, os.ErrNotExist
	}
	cp, err := LoadCheckpoint(CheckpointPath(m.cfg.Dir, id))
	if err != nil {
		return StatusResponse{}, err
	}
	st := StatusResponse{
		ID:              cp.ID,
		Name:            cp.Spec.Name,
		Strategy:        cp.Spec.Strategy,
		Status:          StatusInterrupted,
		TotalPoints:     cp.Spec.Generations * cp.Spec.Population,
		CompletedPoints: len(cp.Done),
		ResumedPoints:   len(cp.Done),
	}
	for _, c := range cp.Done {
		switch {
		case c.Invalid:
			st.InvalidPoints++
		case !c.Feasible:
			st.InfeasiblePoints++
		}
	}
	if cp.Front != nil {
		st.Status = StatusDone
		st.Front = cp.Front
	}
	return st, nil
}

// Close cancels every running search and waits for them to unwind.
// Their checkpoints survive, so a restarted process resumes them.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// run executes one search job to completion.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	if h := m.cfg.Hooks.SearchStarted; h != nil {
		h()
	}
	r := &Runner{
		Spec:        j.spec,
		ID:          j.id,
		Dir:         m.cfg.Dir,
		Eval:        m.cfg.Eval,
		Parallelism: m.cfg.Parallelism,
		Hooks: Hooks{
			PointExecuted: func(c CandidateResult) {
				j.recordPoint(c, false)
				if h := m.cfg.Hooks.PointExecuted; h != nil {
					h(c)
				}
			},
			PointResumed: func(c CandidateResult) {
				j.recordPoint(c, true)
				if h := m.cfg.Hooks.PointResumed; h != nil {
					h(c)
				}
			},
		},
		OnUpdate: j.publish,
	}
	res, err := r.Run(m.ctx)
	j.finish(res, err)
	if h := m.cfg.Hooks.SearchDone; h != nil {
		h(err)
	}
}

// Job is one live search: its mutable progress state plus a broadcast
// channel fan-out for NDJSON streaming.
type Job struct {
	id   string
	spec Spec

	mu       sync.Mutex
	done     bool
	executed int
	resumed  int
	// records accumulates every evaluated candidate so the incumbent
	// front can be computed on demand while the search runs.
	records map[cell]CandidateResult
	result  *Result
	errText string
	subs    map[chan Update]struct{}
	doneCh  chan struct{}
}

func newJob(id string, spec Spec) *Job {
	return &Job{
		id:      id,
		spec:    spec,
		records: make(map[cell]CandidateResult),
		subs:    make(map[chan Update]struct{}),
		doneCh:  make(chan struct{}),
	}
}

// ID returns the search identity.
func (j *Job) ID() string { return j.id }

// Done is closed when the search finishes (any outcome).
func (j *Job) Done() <-chan struct{} { return j.doneCh }

func (j *Job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// recordPoint updates progress state for one evaluated candidate.
func (j *Job) recordPoint(c CandidateResult, viaResume bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if viaResume {
		j.resumed++
	} else {
		j.executed++
	}
	j.records[cell{c.Gen, c.Index}] = c
}

// publish broadcasts u to subscribers. Slow subscribers miss
// intermediate updates (their channel is full); the final line is
// delivered via Subscribe's close instead.
func (j *Job) publish(u Update) {
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- u:
		default:
		}
	}
	j.mu.Unlock()
}

// finish records the terminal state and wakes everyone waiting.
func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	j.done = true
	j.result = res
	if err != nil {
		j.errText = err.Error()
	}
	for ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[chan Update]struct{})
	j.mu.Unlock()
	close(j.doneCh)
}

// Subscribe returns a channel of progress updates and a cancel func the
// caller must invoke when done. The channel is closed when the search
// finishes (immediately, if it already has); intermediate updates are
// dropped rather than blocking the search when the subscriber lags.
func (j *Job) Subscribe() (<-chan Update, func()) {
	ch := make(chan Update, 16)
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// Status reports the job's current state, including the incumbent front
// over the candidates evaluated so far.
func (j *Job) Status() StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StatusResponse{
		ID:              j.id,
		Name:            j.spec.Name,
		Strategy:        j.spec.Strategy,
		Status:          StatusRunning,
		TotalPoints:     j.spec.Generations * j.spec.Population,
		CompletedPoints: j.executed + j.resumed,
		ExecutedPoints:  j.executed,
		ResumedPoints:   j.resumed,
		Error:           j.errText,
	}
	for _, c := range j.records {
		switch {
		case c.Invalid:
			st.InvalidPoints++
		case !c.Feasible:
			st.InfeasiblePoints++
		}
	}
	if j.done {
		if j.result != nil {
			st.Status = StatusDone
			st.Front = j.result.Front
		} else {
			st.Status = StatusFailed
		}
		return st
	}
	if front := computeFront(j.spec, j.records); len(front) > 0 {
		st.Front = front
	}
	return st
}
