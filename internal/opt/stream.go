package opt

import (
	"encoding/json"
	"net/http"
)

// NDJSONContentType is the newline-delimited JSON media type the
// incumbent stream is served with (the serving tier's streaming
// convention; duplicated here because serve imports this package).
const NDJSONContentType = "application/x-ndjson"

// StreamUpdates writes a search's progress to w as NDJSON: one Update
// line per evaluated candidate (lagging readers skip intermediates
// rather than stalling the search), then a final line whose Status
// carries the terminal state. onLine, if non-nil, is called after each
// line (stream metrics). Blocks until the search finishes or the client
// disconnects.
func StreamUpdates(w http.ResponseWriter, r *http.Request, j *Job, onLine func()) {
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	line := func(u Update) bool {
		if err := enc.Encode(u); err != nil {
			return false
		}
		rc.Flush()
		if onLine != nil {
			onLine()
		}
		return true
	}

	updates, cancel := j.Subscribe()
	defer cancel()
	ctx := r.Context()
stream:
	for {
		select {
		case u, ok := <-updates:
			if !ok {
				break stream
			}
			if !line(u) {
				return
			}
		case <-ctx.Done():
			return
		}
	}

	st := j.Status()
	final := Update{Completed: st.CompletedPoints, Total: st.TotalPoints, Status: &st}
	if st.Status == StatusDone {
		final.Type = "done"
	} else {
		final.Type = "failed"
	}
	line(final)
}
