package opt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// checkpointVersion guards the on-disk schema; a loader refuses a file
// written by an incompatible future format instead of misreading it.
const checkpointVersion = 1

// tmpSeq distinguishes concurrent temp files within one process (the
// DiskStore idiom: pid + sequence, then an atomic rename).
var tmpSeq atomic.Int64

// CandidateResult is one evaluated design point — the checkpoint's unit
// of durability and the front's raw material. Every field derives
// deterministically from (Spec, Gen, Index), so a resumed search
// reproduces missing candidates bit-for-bit.
type CandidateResult struct {
	// Gen and Index address the candidate's cell in the search schedule:
	// Gen is the proposal round, Index the slot within it.
	Gen   int
	Index int
	// Candidate is the proposed point as axis indices into the space.
	Candidate Candidate
	// Seed is CandidateSeed(spec.Seed, Gen, Index), driving the
	// candidate's yield sweep when the search samples one.
	Seed int64
	// M, NRFCU, NLambda and Reuses are the resolved axis values.
	M       int
	NRFCU   int
	NLambda int
	Reuses  int
	// Config names the materialized design point and ConfigHash is its
	// canonical content hash — the route/cache key its evaluation rode.
	Config     string `json:",omitempty"`
	ConfigHash string `json:",omitempty"`
	// Invalid marks a point the architecture model rejects (Note says
	// why); it is recorded so the search never retries it, but carries
	// no metrics and can never enter the front.
	Invalid bool   `json:",omitempty"`
	Note    string `json:",omitempty"`
	// Feasible reports whether the point satisfies the spec's area and
	// power budgets; only feasible points enter the front.
	Feasible bool `json:",omitempty"`
	// Metrics are the candidate's measured objectives.
	Metrics Metrics
}

// Checkpoint is the durable search state: the defaulted spec, every
// evaluated candidate, and — once the search finishes — the final
// front. It is written atomically (temp file + rename) after every
// evaluated candidate, so a SIGKILL at any instant leaves either the
// previous checkpoint or the next one, never a torn file.
type Checkpoint struct {
	// Version is the schema version (checkpointVersion).
	Version int
	// ID is the search identity the file belongs to; a loader rejects a
	// mismatch rather than resuming someone else's candidates.
	ID string
	// Spec is the defaulted search spec.
	Spec Spec
	// Done lists evaluated candidates sorted by (Gen, Index).
	Done []CandidateResult
	// Front is the final Pareto front; non-nil only when the search ran
	// to completion (its presence is how a status probe tells "done"
	// from "interrupted"). Deliberately not omitempty: a finished search
	// whose every point broke the budgets has an empty-but-present
	// front, which must still read back as done.
	Front []FrontPoint
}

// CheckpointPath names a search's checkpoint file inside dir.
func CheckpointPath(dir, id string) string {
	return filepath.Join(dir, "search-"+id+".json")
}

// LoadCheckpoint reads and validates a checkpoint file. A missing file
// returns an error satisfying errors.Is(err, os.ErrNotExist) — the
// normal first-run case callers test for.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("opt: parsing checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("opt: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.ID == "" {
		return nil, fmt.Errorf("opt: checkpoint %s carries no search ID", path)
	}
	return &cp, nil
}

// writeCheckpoint persists cp atomically into its path: marshal, write a
// uniquely named temp file in the same directory, rename over the
// destination. Readers never observe a partial file, and a crash leaves
// at most a stale temp file behind.
func writeCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return fmt.Errorf("opt: encoding checkpoint: %w", err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("opt: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("opt: committing checkpoint: %w", err)
	}
	return nil
}

// sortResults orders candidates by (Gen, Index) — the canonical
// checkpoint and front order, independent of completion order.
func sortResults(rs []CandidateResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Gen != rs[j].Gen {
			return rs[i].Gen < rs[j].Gen
		}
		return rs[i].Index < rs[j].Index
	})
}

// errWrongSearch reports a checkpoint/search identity mismatch.
var errWrongSearch = errors.New("opt: checkpoint belongs to a different search")
