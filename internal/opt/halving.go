package opt

import (
	"math/rand"
	"sort"
)

// halvingStrategy is successive halving adapted to a fixed-cost design
// space: rung g spends a budget of max(Population >> g, 2) points, and
// every rung after the first concentrates it on single-step refinements
// around the best half of the previous rung (ordered by constrained
// non-dominated rank over the whole history, ties broken by crowding).
// The shrinking rungs mean the strategy deliberately spends less than
// the Generations x Population budget — exploitation instead of volume.
type halvingStrategy struct{}

// Name returns "halving".
func (halvingStrategy) Name() string { return StrategyHalving }

// rungBudget is rung g's candidate count.
func rungBudget(population, gen int) int {
	n := population >> gen
	if n < 2 {
		n = 2
	}
	return n
}

// Propose returns a random first rung, then refinements around the top
// half of the previous rung.
func (halvingStrategy) Propose(rng *rand.Rand, pc ProposalContext) []Candidate {
	budget := rungBudget(pc.Spec.Population, pc.Gen)
	if budget > pc.Budget {
		budget = pc.Budget
	}
	if pc.Gen == 0 || len(pc.History) == 0 {
		out := make([]Candidate, budget)
		for i := range out {
			out[i] = pc.Random(rng)
		}
		return out
	}
	rank, crowd := rankAndCrowd(pc.Spec, pc.History)
	var prev []int
	for i, r := range pc.History {
		if r.Gen == pc.Gen-1 {
			prev = append(prev, i)
		}
	}
	if len(prev) == 0 {
		// Degenerate resume state; fall back to global survivors.
		for i := range pc.History {
			prev = append(prev, i)
		}
	}
	sort.SliceStable(prev, func(a, b int) bool {
		if rank[prev[a]] != rank[prev[b]] {
			return rank[prev[a]] < rank[prev[b]]
		}
		return crowd[prev[a]] > crowd[prev[b]]
	})
	keep := (len(prev) + 1) / 2
	survivors := prev[:keep]
	out := make([]Candidate, budget)
	for i := range out {
		out[i] = pc.Neighbor(rng, pc.History[survivors[i%keep]].Candidate)
	}
	return out
}
