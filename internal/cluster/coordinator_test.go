package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"refocus/internal/serve"
	"refocus/internal/serveclient"
)

// testCluster boots n real worker shards and a coordinator over them,
// returning the coordinator plus its URL and the shard servers for
// direct inspection (index-aligned with Config.Shards).
func testCluster(t *testing.T, n int, mutate func(*Config)) (*Coordinator, string, []*serve.Server, []*httptest.Server) {
	t.Helper()
	shards := make([]*serve.Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = serve.New(serve.Config{})
		tss[i] = httptest.NewServer(shards[i].Handler())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	cfg := Config{
		Shards:     urls,
		HedgeDelay: time.Second, // far past an analytic evaluation: no accidental hedges
		Client: serveclient.Config{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	return coord, cts.URL, shards, tss
}

// sweepBody builds a sweep of n distinct design points (distinct names →
// distinct cache keys → spread across the ring).
func sweepBody(n int) string {
	points := make([]string, n)
	for i := range points {
		points[i] = fmt.Sprintf(`{"Preset": "fb", "Network": "ResNet-18", "Overrides": {"Name": "pt-%d"}}`, i)
	}
	return `{"Points": [` + strings.Join(points, ",") + `]}`
}

// postJSON posts body and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestCoordinatorSweepScatterGather: a sweep through the coordinator
// succeeds point-for-point, spreads across more than one shard, and the
// routing metrics account for every point.
func TestCoordinatorSweepScatterGather(t *testing.T) {
	coord, url, shards, _ := testCluster(t, 3, nil)
	const n = 30
	status, body := postJSON(t, url+"/v1/sweep", sweepBody(n))
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, body)
	}
	var resp serve.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != n {
		t.Fatalf("got %d points, want %d", len(resp.Points), n)
	}
	for i, p := range resp.Points {
		if p.Error != "" {
			t.Errorf("point %d failed: %s", i, p.Error)
		}
		if want := fmt.Sprintf("pt-%d", i); p.Config != want {
			t.Errorf("point %d answered for %q (order lost?)", i, p.Config)
		}
	}
	snap := coord.MetricsSnapshot()
	if snap.Points != n || snap.PointErrors != 0 {
		t.Errorf("snapshot %+v, want %d points / 0 errors", snap, n)
	}
	var routed int64
	busy := 0
	for _, st := range snap.Shards {
		routed += st.Routed
		if st.Routed > 0 {
			busy++
		}
	}
	if routed != n {
		t.Errorf("per-shard Routed sums to %d, want %d", routed, n)
	}
	if busy < 2 {
		t.Errorf("only %d shards saw traffic — the ring is not spreading", busy)
	}
	// The work itself landed on the shards, not the coordinator.
	var evals int64
	for _, s := range shards {
		evals += s.MetricsSnapshot().Evaluations
	}
	if evals != n {
		t.Errorf("shards evaluated %d points, want %d", evals, n)
	}
}

// TestCoordinatorDeadShardFailover: with one shard down, every point
// still answers — the breaker makes the dead shard fail fast and the
// ring's successor picks the point up — and the failovers are
// metrics-visible with zero client-visible errors.
func TestCoordinatorDeadShardFailover(t *testing.T) {
	coord, url, _, tss := testCluster(t, 3, nil)
	tss[2].Close() // shard 3 is now connection-refused
	const n = 30
	status, body := postJSON(t, url+"/v1/sweep", sweepBody(n))
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, body)
	}
	var resp serve.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, p := range resp.Points {
		if p.Error != "" {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d/%d points lost to a single dead shard", lost, n)
	}
	snap := coord.MetricsSnapshot()
	if snap.PointErrors != 0 {
		t.Errorf("PointErrors = %d, want 0", snap.PointErrors)
	}
	if snap.Failovers == 0 {
		t.Error("no failovers recorded though a ring member is dead")
	}
}

// TestCoordinatorStreamedSweep: the coordinator speaks the same NDJSON
// lane as a single worker — serveclient.SweepStream cannot tell them
// apart — and counts the streamed lines.
func TestCoordinatorStreamedSweep(t *testing.T) {
	coord, url, _, _ := testCluster(t, 2, nil)
	c, err := serveclient.New(serveclient.Config{BaseURL: url})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var req serve.SweepRequest
	if err := json.Unmarshal([]byte(sweepBody(n)), &req); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	if err := c.SweepStream(context.Background(), req, func(line serve.SweepStreamLine) error {
		if line.Error != "" {
			t.Errorf("point %d failed: %s", line.Index, line.Error)
		}
		seen[line.Index] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d distinct indices, want %d", len(seen), n)
	}
	if got := coord.MetricsSnapshot().StreamLines; got != n {
		t.Errorf("StreamLines = %d, want %d", got, n)
	}
}

// TestCoordinatorPlacementCacheAffinity: the same request twice lands on
// the same shard, so the repeat is that shard's cache hit — no shard
// evaluates it twice, cluster-wide.
func TestCoordinatorPlacementCacheAffinity(t *testing.T) {
	_, url, shards, _ := testCluster(t, 3, nil)
	req := `{"Preset": "fb", "Network": "ResNet-18"}`
	for i := 0; i < 2; i++ {
		if status, body := postJSON(t, url+"/v1/evaluate", req); status != http.StatusOK {
			t.Fatalf("evaluate %d: %d %s", i, status, body)
		}
	}
	var evals, hits int64
	for _, s := range shards {
		snap := s.MetricsSnapshot()
		evals += snap.Evaluations
		hits += snap.Cache.Hits
	}
	if evals != 1 || hits != 1 {
		t.Errorf("cluster evaluated %d / hit %d, want 1 / 1 (placement unstable?)", evals, hits)
	}
}

// TestCoordinatorEdgeValidation: malformed and over-limit requests are
// rejected at the coordinator with the worker tier's statuses and
// structured payload, before any shard round trip.
func TestCoordinatorEdgeValidation(t *testing.T) {
	_, url, shards, _ := testCluster(t, 2, func(cfg *Config) {
		cfg.Limits = serve.SpecLimits{MaxLayers: 1}
	})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad preset", `{"Preset": "no-such"}`, http.StatusBadRequest},
		{"unknown field", `{"Bogus": 1}`, http.StatusBadRequest},
		{"over-limit spec", `{"Preset": "fb", "NetworkSpec": {"Name": "big", "Layers": [
			{"Kind": "fc", "Name": "f", "In": 8, "Out": 8, "Tokens": 1, "Repeat": 2}]}}`,
			http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		status, body := postJSON(t, url+"/v1/evaluate", tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d\n%s", tc.name, status, tc.status, body)
			continue
		}
		var er serve.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Status != tc.status {
			t.Errorf("%s: not a structured error payload: %s", tc.name, body)
		}
	}
	if status, body := postJSON(t, url+"/v1/sweep", `{"Points": []}`); status != http.StatusBadRequest {
		t.Errorf("empty sweep: %d %s", status, body)
	}
	for i, s := range shards {
		if reqs := s.MetricsSnapshot().Endpoints["/v1/evaluate"]; reqs.Requests != 0 {
			t.Errorf("shard %d saw %d requests — edge validation leaked", i, reqs.Requests)
		}
	}
}

// TestCoordinatorObservability: healthz answers, and both metrics views
// expose the routing counters.
func TestCoordinatorObservability(t *testing.T) {
	_, url, _, _ := testCluster(t, 2, nil)
	if status, body := postJSON(t, url+"/v1/evaluate", `{"Preset": "fb", "Network": "ResNet-18"}`); status != 200 {
		t.Fatalf("evaluate: %d %s", status, body)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Status != "ok" || hr.Shards != 2 {
		t.Errorf("healthz: %+v", hr)
	}
	resp, err = http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"refocus_cluster_routed_total", "refocus_cluster_points_total", "refocus_cluster_in_flight"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus view missing %s", want)
		}
	}
}
