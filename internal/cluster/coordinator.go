package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"refocus/internal/arch"
	"refocus/internal/faults"
	"refocus/internal/obs"
	"refocus/internal/opt"
	"refocus/internal/robust"
	"refocus/internal/serve"
	"refocus/internal/serveclient"
)

// Config tunes the coordinator. Shards is required; everything else has
// serving-grade defaults.
type Config struct {
	// Shards are the worker base URLs ("http://127.0.0.1:9101", ...).
	// Order is only cosmetic — placement comes from the ring.
	Shards []string
	// VNodes is the ring's per-shard virtual-node count; < 1 means
	// DefaultVNodes.
	VNodes int
	// Seed seeds ring placement; every coordinator over one cluster must
	// share it.
	Seed uint64
	// HedgeDelay is how long a point waits on its primary shard before a
	// duplicate attempt is launched on the next ring successor; <= 0
	// disables latency hedging (failover on error still happens).
	// Default 250ms.
	HedgeDelay time.Duration
	// Attempts caps how many ring successors one point may try (primary
	// included). Default 2, clamped to the shard count.
	Attempts int
	// ShardConcurrency bounds concurrent dispatches per primary shard, so
	// a huge sweep saturates the cluster evenly instead of flooding one
	// shard's queue into shedding. Default 8.
	ShardConcurrency int
	// SweepTimeout bounds one whole sweep; individual points inherit it.
	// Default 120s.
	SweepTimeout time.Duration
	// MaxBodyBytes caps request body size; larger bodies get 413.
	// Default 8 MiB (sweeps are batches; the worker default is 1 MiB).
	MaxBodyBytes int64
	// CampaignDir is the robustness-campaign checkpoint directory for
	// campaigns the coordinator runs (trials fan out across the shards).
	// Empty disables durability.
	CampaignDir string
	// OptimizeDir is the design-space-search checkpoint directory for
	// searches the coordinator runs (candidate evaluations fan out across
	// the shards). Empty disables durability.
	OptimizeDir string
	// Client is the template for the per-shard serveclient configuration
	// (BaseURL is overwritten per shard). The zero value gets defaults
	// tuned for fast failover: 1 retry, breaker threshold 2.
	Client serveclient.Config
	// Limits are the inline-spec resource limits enforced at the edge —
	// rejecting an oversized spec here costs no shard round trip. Zero
	// fields get the serve package defaults.
	Limits serve.SpecLimits
	// Logger receives one line per dispatched point; nil silences it.
	Logger *slog.Logger
	// Trace, when non-nil, collects one span per dispatched point with
	// its route and outcome — the coordinator-side flight recorder the CI
	// job uploads as an artifact.
	Trace *obs.Trace
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 250 * time.Millisecond
	}
	if c.Attempts < 1 {
		c.Attempts = 2
	}
	if c.Attempts > len(c.Shards) {
		c.Attempts = len(c.Shards)
	}
	if c.ShardConcurrency < 1 {
		c.ShardConcurrency = 8
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Client.MaxRetries == 0 {
		c.Client.MaxRetries = 1
	}
	if c.Client.BreakerThreshold == 0 {
		c.Client.BreakerThreshold = 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	c.Limits = c.Limits.WithDefaults()
	return c
}

// Coordinator fronts a set of worker shards with the single-node serve
// API: POST /v1/evaluate and /v1/sweep (buffered and NDJSON lanes),
// GET /healthz and /metrics. Each request routes by serve.RouteKey on
// the consistent-hash ring, dispatches through the per-shard serveclient
// (retries, breaker) with hedging onto ring successors, and — because
// shards key their caches by the same identity — turns cluster-wide
// repeats into cache hits on whichever shard owns them.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	clients map[string]*serveclient.Client
	sems    map[string]chan struct{}
	metrics *Metrics
	mux     *http.ServeMux
	logger  *slog.Logger
	robust  *robust.Manager
	opt     *opt.Manager
}

// New builds a Coordinator and its per-shard clients.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Shards, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		clients: make(map[string]*serveclient.Client, len(cfg.Shards)),
		sems:    make(map[string]chan struct{}, len(cfg.Shards)),
		metrics: newClusterMetrics(cfg.Shards),
		mux:     http.NewServeMux(),
		logger:  cfg.Logger,
	}
	for _, s := range cfg.Shards {
		ccfg := cfg.Client
		ccfg.BaseURL = s
		cl, err := serveclient.New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", s, err)
		}
		c.clients[s] = cl
		c.sems[s] = make(chan struct{}, cfg.ShardConcurrency)
	}
	c.robust, err = robust.NewManager(robust.ManagerConfig{
		Dir:  cfg.CampaignDir,
		Eval: c.campaignEval,
		// Trials fan out across the whole cluster, so the per-campaign
		// bound scales with the fleet rather than one worker's pool.
		Parallelism: cfg.ShardConcurrency * len(cfg.Shards),
		Hooks: robust.Hooks{
			CampaignStarted: func() {
				c.metrics.robustCampaigns.Inc()
				c.metrics.robustActive.Add(1)
			},
			CampaignDone:  func(error) { c.metrics.robustActive.Add(-1) },
			TrialExecuted: func(robust.TrialResult) { c.metrics.robustTrials.Inc() },
			TrialResumed:  func(robust.TrialResult) { c.metrics.robustResumed.Inc() },
		},
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.opt, err = opt.NewManager(opt.ManagerConfig{
		Dir:  cfg.OptimizeDir,
		Eval: c.optimizeEval,
		// Candidate evaluations fan out across the whole cluster, so the
		// per-search bound scales with the fleet rather than one worker's
		// pool.
		Parallelism: cfg.ShardConcurrency * len(cfg.Shards),
		Hooks: opt.Hooks{
			SearchStarted: func() {
				c.metrics.optSearches.Inc()
				c.metrics.optActive.Add(1)
			},
			SearchDone:    func(error) { c.metrics.optActive.Add(-1) },
			PointExecuted: func(opt.CandidateResult) { c.metrics.optPoints.Inc() },
			PointResumed:  func(opt.CandidateResult) { c.metrics.optResumed.Inc() },
		},
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.mux.Handle("POST /v1/evaluate", c.instrument(c.handleEvaluate))
	c.mux.Handle("POST /v1/sweep", c.instrument(c.handleSweep))
	c.mux.Handle("POST /v1/robustness", c.instrument(c.handleRobustnessStart))
	c.mux.Handle("GET /v1/robustness/{id}", c.instrument(c.handleRobustnessStatus))
	c.mux.Handle("POST /v1/optimize", c.instrument(c.handleOptimizeStart))
	c.mux.Handle("GET /v1/optimize/{id}", c.instrument(c.handleOptimizeStatus))
	c.mux.Handle("GET /healthz", c.instrument(c.handleHealthz))
	c.mux.Handle("GET /metrics", c.instrument(c.handleMetrics))
	return c, nil
}

// Close cancels any running robustness campaigns and design-space
// searches and waits for them to unwind; their checkpoints survive for
// the next incarnation to resume.
func (c *Coordinator) Close() {
	c.robust.Close()
	c.opt.Close()
}

// Handler returns the coordinator's HTTP handler (all routes).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Ring exposes the placement ring (read-only) for tests and tooling.
func (c *Coordinator) Ring() *Ring { return c.ring }

// MetricsSnapshot returns the current counters — what GET /metrics serves.
func (c *Coordinator) MetricsSnapshot() Snapshot { return c.metrics.snapshot() }

// instrument tracks in-flight requests.
func (c *Coordinator) instrument(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.metrics.inFlight.Add(1)
		defer c.metrics.inFlight.Add(-1)
		h(w, r)
	})
}

// writeJSON sends v with the given status.
func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed write means the client is gone
}

// writeError sends the worker tier's structured error payload, mapping
// shard-reported StatusErrors back onto their original status so the
// coordinator is transparent to clients.
func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	status := serve.StatusOf(err)
	var se *serveclient.StatusError
	if errors.As(err, &se) && se.Status >= 400 {
		status = se.Status
	}
	c.writeJSON(w, status, serve.ErrorResponse{Error: err.Error(), Status: status})
}

// decodeBody strictly parses the request body into v under the size cap.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return serve.BadRequest(fmt.Errorf("cluster: parsing request: %w", err))
	}
	return nil
}

// dispatch places one evaluate request on the ring and runs it through
// the hedged client chain: the owning shard first, then ring successors
// on failure or hedge expiry. The returned shard is the winner's base
// URL.
func (c *Coordinator) dispatch(ctx context.Context, req serve.EvaluateRequest) (serve.EvaluateResponse, string, error) {
	key, err := serve.RouteKey(req, c.cfg.Limits)
	if err != nil {
		return serve.EvaluateResponse{}, "", err
	}
	return c.dispatchKeyed(ctx, req, key)
}

// dispatchKeyed is dispatch with the placement key supplied by the
// caller — robustness campaigns route each trial by its trial seed, so
// a fixed trial always lands on the same shard regardless of which
// process (or incarnation) dispatches it.
func (c *Coordinator) dispatchKeyed(ctx context.Context, req serve.EvaluateRequest, key string) (serve.EvaluateResponse, string, error) {
	targets := c.ring.Successors(key, c.cfg.Attempts)
	primary := targets[0]
	clients := make([]*serveclient.Client, len(targets))
	for i, s := range targets {
		clients[i] = c.clients[s]
	}
	span := obs.StartSpan(obs.WithTrace(ctx, c.cfg.Trace), "cluster.dispatch")
	span.SetAttr("shard", primary)

	sem := c.sems[primary]
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		span.SetAttr("outcome", "canceled")
		span.End()
		return serve.EvaluateResponse{}, "", fmt.Errorf("cluster: waiting for shard slot: %w", ctx.Err())
	}
	defer func() { <-sem }()

	c.metrics.points.Inc()
	sm := c.metrics.shard(primary)
	sm.routed.Inc()
	res, err := serveclient.EvaluateHedged(ctx, clients, c.cfg.HedgeDelay, req)
	if err != nil {
		c.metrics.pointErrs.Inc()
		span.SetAttr("outcome", "failed")
		span.End()
		c.logger.LogAttrs(ctx, slog.LevelWarn, "point failed",
			slog.String("shard", primary), slog.String("error", err.Error()))
		return serve.EvaluateResponse{}, "", err
	}
	if res.Hedged {
		sm.hedges.Inc()
	}
	winner := targets[res.Target]
	if res.Target != 0 {
		sm.failovers.Inc()
	}
	span.SetAttr("winner", winner)
	span.SetAttr("attempts", res.Attempts)
	span.End()
	c.logger.LogAttrs(ctx, slog.LevelDebug, "point served",
		slog.String("shard", primary), slog.String("winner", winner),
		slog.Int("attempts", res.Attempts))
	return res.Resp, winner, nil
}

// handleEvaluate serves POST /v1/evaluate by proxying to the owning
// shard (with failover).
func (c *Coordinator) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req serve.EvaluateRequest
	if err := c.decodeBody(w, r, &req); err != nil {
		c.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.SweepTimeout)
	defer cancel()
	resp, _, err := c.dispatch(ctx, req)
	if err != nil {
		c.writeError(w, err)
		return
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// handleSweep serves POST /v1/sweep: points scatter across the ring
// concurrently (per-shard concurrency bounded) and gather either into
// the buffered SweepResponse or, with Accept: application/x-ndjson, onto
// the streaming lane — the same wire contract the single-node service
// speaks, so clients cannot tell a coordinator from a worker.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req serve.SweepRequest
	if err := c.decodeBody(w, r, &req); err != nil {
		c.writeError(w, err)
		return
	}
	if len(req.Points) == 0 {
		c.writeError(w, serve.BadRequest(errors.New("cluster: sweep carries no Points")))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.SweepTimeout)
	defer cancel()

	lines := make(chan serve.SweepStreamLine, len(req.Points))
	for i := range req.Points {
		go func(i int) {
			line := serve.SweepStreamLine{Index: i}
			resp, _, err := c.dispatch(ctx, req.Points[i])
			if err != nil {
				line.Error = err.Error()
			} else {
				line.EvaluateResponse = resp
			}
			lines <- line
		}(i)
	}

	if serve.WantsNDJSON(r) {
		c.streamSweep(w, len(req.Points), lines)
		return
	}
	resp := serve.SweepResponse{Points: make([]serve.SweepPointResult, len(req.Points))}
	for range req.Points {
		line := <-lines
		resp.Points[line.Index] = line.SweepPointResult
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// streamSweep writes the NDJSON lane, one flushed line per completed
// point.
func (c *Coordinator) streamSweep(w http.ResponseWriter, n int, lines <-chan serve.SweepStreamLine) {
	w.Header().Set("Content-Type", serve.NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		line := <-lines
		if err := enc.Encode(line); err != nil {
			return
		}
		c.metrics.stream.Inc()
		rc.Flush() //nolint:errcheck // an unflushable writer just buffers
	}
}

// metricEnergy extracts energy per inference for geomean aggregation.
var metricEnergy arch.Metric = func(r arch.Report) float64 { return r.Energy }

// campaignEval is the robust.TrialEval backing coordinator-run
// campaigns: each trial becomes an evaluate request dispatched onto the
// ring by its trial-seed route key, riding the same hedged client chain
// (retries, breaker, dead-shard failover) ordinary points use. A shed
// trial (the whole chain answering 429) waits out the Retry-After and
// redispatches — campaign work is deferrable by definition.
func (c *Coordinator) campaignEval(ctx context.Context, spec robust.Spec, fs faults.FaultSet, routeKey string) (robust.TrialMetrics, error) {
	req := serve.EvaluateRequest{
		Preset:  spec.Preset,
		Config:  spec.Config,
		Network: spec.Network,
	}
	if !fs.IsZero() {
		data, err := json.Marshal(fs.Canonical())
		if err != nil {
			return robust.TrialMetrics{}, err
		}
		req.Faults = data
	}
	for {
		resp, _, err := c.dispatchKeyed(ctx, req, routeKey)
		if err == nil {
			return robust.TrialMetrics{
				FPS:    arch.GeoMean(resp.Reports, arch.MetricFPS),
				Energy: arch.GeoMean(resp.Reports, metricEnergy),
			}, nil
		}
		var se *serveclient.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
			return robust.TrialMetrics{}, err
		}
		t := time.NewTimer(time.Second)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return robust.TrialMetrics{}, fmt.Errorf("cluster: campaign trial canceled during backoff: %w", ctx.Err())
		}
	}
}

// handleRobustnessStart serves POST /v1/robustness, mirroring the worker
// tier's handler: validate the spec, start (or attach to / resume) the
// campaign, answer 202/200 with its status — or stream NDJSON incumbent
// updates when asked. The campaign itself runs in the coordinator
// process; only its trials travel to the shards.
func (c *Coordinator) handleRobustnessStart(w http.ResponseWriter, r *http.Request) {
	var spec robust.Spec
	if err := c.decodeBody(w, r, &spec); err != nil {
		c.writeError(w, err)
		return
	}
	job, created, err := c.robust.Start(spec)
	if err != nil {
		if errors.Is(err, robust.ErrBusy) {
			w.Header().Set("Retry-After", "5")
			c.writeJSON(w, http.StatusTooManyRequests,
				serve.ErrorResponse{Error: err.Error(), Status: http.StatusTooManyRequests})
			return
		}
		c.writeError(w, serve.BadRequest(err))
		return
	}
	if serve.WantsNDJSON(r) {
		robust.StreamUpdates(w, r, job, c.metrics.stream.Inc)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	c.writeJSON(w, status, job.Status())
}

// handleRobustnessStatus serves GET /v1/robustness/{id} from the live
// job or the checkpoint on disk.
func (c *Coordinator) handleRobustnessStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job, ok := c.robust.Get(id); ok {
		c.writeJSON(w, http.StatusOK, job.Status())
		return
	}
	st, err := c.robust.StatusFromDisk(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			c.writeJSON(w, http.StatusNotFound,
				serve.ErrorResponse{Error: fmt.Sprintf("cluster: no campaign %q", id), Status: http.StatusNotFound})
			return
		}
		c.writeError(w, err)
		return
	}
	c.writeJSON(w, http.StatusOK, st)
}

// HealthResponse is the coordinator's /healthz payload.
type HealthResponse struct {
	// Status is "ok" whenever the coordinator itself is up — shard
	// failures degrade service but do not fail liveness.
	Status string
	// Shards is the ring member count.
	Shards int
}

// handleHealthz serves GET /healthz.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Shards: len(c.cfg.Shards)})
}

// handleMetrics serves GET /metrics: JSON by default, Prometheus text
// with ?format=prometheus — mirroring the worker tier.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.metrics.writePrometheus(w) //nolint:errcheck // a failed write means the scraper is gone
		return
	}
	c.writeJSON(w, http.StatusOK, c.MetricsSnapshot())
}

// ListenAndServe runs the coordinator on addr until ctx is canceled,
// then drains in-flight requests — the same lifecycle contract as
// serve.ListenAndServe. It announces the bound address on out, so addr
// may use port 0 in tests.
func ListenAndServe(ctx context.Context, cfg Config, addr string, out io.Writer) error {
	c, err := New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	fmt.Fprintf(out, "refocus-serve coordinating %s shards on http://%s\n",
		strconv.Itoa(len(cfg.Shards)), ln.Addr())
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("cluster: %w", err)
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), c.cfg.SweepTimeout+time.Second)
		defer cancel()
		if err := hs.Shutdown(drain); err != nil {
			return fmt.Errorf("cluster: shutdown: %w", err)
		}
		fmt.Fprintln(out, "refocus-serve coordinator drained and stopped")
		return nil
	}
}
