// Package cluster is the distributed sweep tier: a deterministic
// consistent-hash ring placing cache keys on worker shards, and a
// coordinator that fronts the shards with the same HTTP surface a single
// refocus-serve exposes. Placement is by serve.RouteKey — the canonical
// (config, faults, workloads) identity — so every spelling of a design
// point lands on the shard already holding its results, and repeats
// across a whole sweep campaign are cluster-wide cache hits. Failure
// handling composes the serveclient primitives: per-shard circuit
// breakers make a dead shard fail fast, hedged requests cut tail
// latency, and a failed point retries on the ring's next-healthy
// successor, so killing a shard mid-sweep loses nothing.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the per-shard virtual-node count. 128 keeps the
// placement spread within a few percent of even for small clusters while
// the ring stays tiny (3 shards × 128 = 384 points).
const DefaultVNodes = 128

// ringEntry is one virtual node: a hash position owned by a shard.
type ringEntry struct {
	hash  uint64
	shard int
}

// Ring is a seeded consistent-hash ring over named shards. Construction
// is deterministic: the same (shards, vnodes, seed) triple builds the
// same ring in every process, so a coordinator fleet agrees on placement
// with no coordination traffic. Adding or removing a shard only remaps
// the keys that shard owned (~1/N of the space) — the property the
// rebalance tests pin down. The zero seed is fine; distinct seeds give
// statistically independent placements, letting tests (and blue/green
// topologies) decorrelate rings over the same shard set.
type Ring struct {
	shards  []string
	vnodes  int
	seed    uint64
	entries []ringEntry // sorted by hash
}

// NewRing builds the ring. Shard names must be non-empty and unique;
// vnodes < 1 gets DefaultVNodes.
func NewRing(shards []string, vnodes int, seed uint64) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("cluster: ring shard name is empty")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate ring shard %q", s)
		}
		seen[s] = true
	}
	r := &Ring{
		shards:  append([]string(nil), shards...),
		vnodes:  vnodes,
		seed:    seed,
		entries: make([]ringEntry, 0, len(shards)*vnodes),
	}
	for i, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.entries = append(r.entries, ringEntry{
				hash:  r.hash(fmt.Sprintf("%s#%d", s, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.entries, func(a, b int) bool {
		if r.entries[a].hash != r.entries[b].hash {
			return r.entries[a].hash < r.entries[b].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the sorted
		// order — and therefore placement — never depends on sort internals.
		return r.entries[a].shard < r.entries[b].shard
	})
	return r, nil
}

// hash is FNV-1a 64 with the ring seed folded into the offset basis (via
// a golden-ratio multiply so seed 0 and 1 diverge everywhere, not in one
// low bit), finished with a murmur3-style mixer. The finalizer matters:
// ring position is the full 64-bit value, and raw FNV-1a has weak
// avalanche into the high bits on short near-identical inputs (shard
// vnode labels differ only in a trailing counter), which clusters
// virtual nodes and skews placement badly.
func (r *Ring) hash(s string) uint64 {
	h := uint64(14695981039346656037) ^ (r.seed * 0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shards returns the shard names in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// find returns the index of the first ring entry at or after key's hash,
// wrapping past the top.
func (r *Ring) find(key string) int {
	h := r.hash(key)
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	if i == len(r.entries) {
		return 0
	}
	return i
}

// Route returns the shard owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Route(key string) string {
	return r.shards[r.entries[r.find(key)].shard]
}

// Successors returns up to n distinct shards in ring order starting at
// key's owner — the owner first, then the failover candidates a
// coordinator walks when the owner is dead or slow. n > the shard count
// is clamped.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.find(key); len(out) < n && i < len(r.entries); i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if !seen[e.shard] {
			seen[e.shard] = true
			out = append(out, r.shards[e.shard])
		}
	}
	return out
}
