package cluster

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"refocus/internal/opt"
	"refocus/internal/serve"
)

// searchBody is the tiny real search of the serve handler tests: 2
// generations x 2 random candidates on the fb preset space.
const searchBody = `{
	"Preset": "fb", "Network": "ResNet-18",
	"Strategy": "random", "Generations": 2, "Population": 2, "Seed": 9
}`

// TestCoordinatorOptimizeSearch: a search submitted to the coordinator
// runs its candidate evaluations through ring dispatch across real
// worker shards and completes with the same front contract as a
// worker-local search.
func TestCoordinatorOptimizeSearch(t *testing.T) {
	coord, url, shards, _ := testCluster(t, 2, nil)
	t.Cleanup(coord.Close)

	code, body := postJSON(t, url+"/v1/optimize", searchBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit answered %d: %s", code, body)
	}
	var st opt.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.TotalPoints != 4 {
		t.Fatalf("submit response missing identity or budget: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.Status == opt.StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("search still running at deadline: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(url + "/v1/optimize/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll answered %d (%v): %s", resp.StatusCode, err, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Status != opt.StatusDone {
		t.Fatalf("search ended %q: %s", st.Status, st.Error)
	}
	if st.CompletedPoints != 4 || len(st.Front) == 0 {
		t.Fatalf("completed=%d front=%d, want 4 points and a non-empty front", st.CompletedPoints, len(st.Front))
	}
	if st.Front[0].Metrics.FPS <= 0 || st.Front[0].ConfigHash == "" {
		t.Errorf("front point missing metrics or identity: %+v", st.Front[0])
	}

	// Every candidate was dispatched to a shard; repeated candidates may
	// be deduplicated by the shard caches, so only the dispatch count is
	// exact.
	m := coord.MetricsSnapshot()
	if m.Points < 4 {
		t.Errorf("coordinator dispatched %d points, want >= 4 candidates", m.Points)
	}
	if m.Optimize.Searches != 1 || m.Optimize.Points != 4 {
		t.Errorf("coordinator optimize metrics: %+v", m.Optimize)
	}
	var evals int64
	for _, s := range shards {
		evals += s.MetricsSnapshot().Evaluations
	}
	if evals < 1 {
		t.Error("no evaluation executed on any shard")
	}

	// Unknown search IDs answer 404 at the coordinator tier too.
	resp, err := http.Get(url + "/v1/optimize/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown search answered %d, want 404", resp.StatusCode)
	}
}

// TestCoordinatorOptimizeStreamAndBadSpec: the coordinator's NDJSON lane
// delivers per-candidate updates ending in a terminal status line, and a
// malformed spec answers 400 without starting work.
func TestCoordinatorOptimizeStreamAndBadSpec(t *testing.T) {
	coord, url, _, _ := testCluster(t, 2, nil)
	t.Cleanup(coord.Close)

	if code, body := postJSON(t, url+"/v1/optimize", `{"Preset": "fb", "Strategy": "magic"}`); code != http.StatusBadRequest {
		t.Fatalf("bad spec answered %d: %s", code, body)
	}

	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", serve.NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream answered %d", resp.StatusCode)
	}
	var last opt.Update
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("unparseable stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream delivered no lines")
	}
	if last.Type != "done" || last.Status == nil || last.Status.Status != opt.StatusDone {
		t.Fatalf("final stream line is not a done status: %+v", last)
	}
}
