package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"refocus/internal/robust"
)

// campaignBody is the tiny real campaign of the serve handler tests: 2
// severities x 2 trials on the fb preset with a minimal reference task.
const campaignBody = `{
	"Preset": "fb", "Network": "ResNet-18",
	"Severities": [0, 1.5], "Trials": 2, "Seed": 5,
	"Model": {"RFCUFailProb": 0.15, "WavelengthFailProb": 0.05, "BufferLossSigmaDB": 0.4},
	"Task": {"Classes": 2, "Size": 4, "TrainSamples": 6, "TestSamples": 4, "Epochs": 1, "LearningRate": 0.05}
}`

// TestCoordinatorRobustnessCampaign: a campaign submitted to the
// coordinator runs its trials through ring dispatch across real worker
// shards and completes with the same frontier contract as a worker-local
// campaign.
func TestCoordinatorRobustnessCampaign(t *testing.T) {
	coord, url, shards, _ := testCluster(t, 2, nil)
	t.Cleanup(coord.Close)

	code, body := postJSON(t, url+"/v1/robustness", campaignBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit answered %d: %s", code, body)
	}
	var st robust.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.TotalTrials != 4 {
		t.Fatalf("submit response missing identity or budget: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.Status == robust.StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running at deadline: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(url + "/v1/robustness/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll answered %d (%v): %s", resp.StatusCode, err, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Status != robust.StatusDone {
		t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
	}
	if st.ExecutedTrials != 4 || len(st.Frontier) != 2 {
		t.Fatalf("executed=%d frontier=%d, want 4 trials and 2 points", st.ExecutedTrials, len(st.Frontier))
	}
	if st.NominalFPS <= 0 || st.Frontier[0].FPS.Mean <= 0 {
		t.Errorf("campaign baselines missing: %+v", st)
	}

	// Every trial plus the nominal evaluation was dispatched to a shard
	// (5 points), and real work landed on the fleet — the shard caches
	// may deduplicate zero-fault trials against the nominal point, so
	// only the dispatch count is exact.
	m := coord.MetricsSnapshot()
	if m.Points < 5 {
		t.Errorf("coordinator dispatched %d points, want >= 5 (4 trials + nominal)", m.Points)
	}
	if m.Robustness.Campaigns != 1 || m.Robustness.Trials != 4 {
		t.Errorf("coordinator robustness metrics: %+v", m.Robustness)
	}
	var evals int64
	for _, s := range shards {
		evals += s.MetricsSnapshot().Evaluations
	}
	if evals < 1 {
		t.Error("no evaluation executed on any shard")
	}

	// Unknown campaign IDs answer 404 at the coordinator tier too.
	resp, err := http.Get(url + "/v1/robustness/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign answered %d, want 404", resp.StatusCode)
	}
}
