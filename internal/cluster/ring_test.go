package cluster

import (
	"fmt"
	"testing"
)

// keys returns n distinct synthetic cache keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cfghash-%d|nethash-%d", i, i*7)
	}
	return out
}

// TestRingDeterminism: the same (shards, vnodes, seed) triple places
// every key identically across independently built rings, and shard
// declaration order is irrelevant — placement hangs off shard names.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"s1", "s2", "s3"}, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing([]string{"s1", "s2", "s3"}, 64, 42)
	c, _ := NewRing([]string{"s3", "s1", "s2"}, 64, 42)
	for _, k := range keys(2000) {
		if a.Route(k) != b.Route(k) {
			t.Fatalf("identical rings disagree on %q", k)
		}
		if a.Route(k) != c.Route(k) {
			t.Fatalf("shard order changed placement of %q", k)
		}
	}
}

// TestRingSeedDecorrelates: different seeds give different placements —
// the ring is seeded, not a fixed function of the shard names.
func TestRingSeedDecorrelates(t *testing.T) {
	a, _ := NewRing([]string{"s1", "s2", "s3"}, 64, 1)
	b, _ := NewRing([]string{"s1", "s2", "s3"}, 64, 2)
	moved := 0
	ks := keys(2000)
	for _, k := range ks {
		if a.Route(k) != b.Route(k) {
			moved++
		}
	}
	// Independent placements agree ~1/3 of the time on 3 shards; zero
	// movement means the seed is dead weight.
	if moved < len(ks)/4 {
		t.Errorf("changing the seed moved only %d/%d keys", moved, len(ks))
	}
}

// TestRingBalance: virtual nodes spread keys within ±25% of an even
// share. At 128 vnodes the share stddev is ~1/√128 ≈ 9%, so ±25% is
// ~3σ headroom — tight enough to catch a hash with bad high-bit
// avalanche (which once skewed a real 3-shard cluster to an 18/82/20
// split), loose enough to never flake on an honest ring. URL-shaped
// shard names exercise the realistic near-identical-prefix case.
func TestRingBalance(t *testing.T) {
	for _, shards := range [][]string{
		{"s1", "s2", "s3", "s4"},
		{"http://127.0.0.1:9101", "http://127.0.0.1:9102", "http://127.0.0.1:9103"},
	} {
		r, err := NewRing(shards, DefaultVNodes, 7)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		ks := keys(20000)
		for _, k := range ks {
			counts[r.Route(k)]++
		}
		want := len(ks) / len(shards)
		for _, s := range shards {
			if counts[s] < want*3/4 || counts[s] > want*5/4 {
				t.Errorf("shard %s owns %d keys, want within [%d, %d]", s, counts[s], want*3/4, want*5/4)
			}
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: removing
// a shard only remaps the keys that shard owned — every surviving
// shard's keys stay put — and the moved fraction is that shard's share,
// not a full reshuffle.
func TestRingRebalanceProperty(t *testing.T) {
	full, err := NewRing([]string{"s1", "s2", "s3", "s4"}, DefaultVNodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"s1", "s2", "s4"}, DefaultVNodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(10000)
	moved, owned := 0, 0
	for _, k := range ks {
		before := full.Route(k)
		after := reduced.Route(k)
		if before == "s3" {
			owned++
			if after == "s3" {
				t.Fatalf("removed shard still owns %q", k)
			}
			continue
		}
		if before != after {
			moved++
			if moved <= 5 {
				t.Errorf("key %q moved %s→%s though its owner survived", k, before, after)
			}
		}
	}
	if moved > 0 {
		t.Errorf("%d keys moved off surviving shards (want 0)", moved)
	}
	if owned == 0 {
		t.Fatal("removed shard owned no keys — the test proves nothing")
	}
}

// TestRingSuccessors: the successor list starts at the owner, holds
// distinct shards, and clamps to the shard count.
func TestRingSuccessors(t *testing.T) {
	r, err := NewRing([]string{"s1", "s2", "s3"}, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("got %d successors, want 2", len(succ))
		}
		if succ[0] != r.Route(k) {
			t.Fatalf("successors of %q do not start at the owner", k)
		}
		if succ[0] == succ[1] {
			t.Fatalf("duplicate successor for %q", k)
		}
	}
	if got := r.Successors("k", 10); len(got) != 3 {
		t.Errorf("successor list not clamped: %v", got)
	}
	if got := r.Successors("k", 0); len(got) != 1 {
		t.Errorf("n=0 should still return the owner: %v", got)
	}
}

// TestRingValidation: bad shard sets are rejected.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8, 0); err == nil {
		t.Error("empty shard name accepted")
	}
	r, err := NewRing([]string{"solo"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Route("anything") != "solo" {
		t.Error("single-shard ring misroutes")
	}
	if got := r.Shards(); len(got) != 1 || got[0] != "solo" {
		t.Errorf("Shards() = %v", got)
	}
}

// BenchmarkRingRoute measures placement for a 16384-point sweep — pure
// ring math, the routing cost a coordinator pays before any network
// work. One op is the whole batch (~1ms) so the figure stays meaningful
// at the CI gate's tiny -benchtime: a single ~70ns lookup would be
// timer noise, and even a µs-scale batch swings tens of percent under
// scheduler preemption on a shared runner.
func BenchmarkRingRoute(b *testing.B) {
	r, err := NewRing([]string{"s1", "s2", "s3"}, DefaultVNodes, 42)
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range ks {
			_ = r.Route(k)
		}
	}
}
