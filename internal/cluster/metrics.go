package cluster

import (
	"io"
	"sync"
	"sync/atomic"

	"refocus/internal/obs"
	"refocus/internal/serve"
)

// Metrics aggregates the coordinator's counters on an obs.Registry,
// serving the same two views the worker tier does: a JSON snapshot for
// dashboards and the CI gates, and the Prometheus text exposition for
// scrapers. Per-shard routing counters ride the "shard" label.
type Metrics struct {
	reg *obs.Registry

	mu        sync.Mutex
	perShard  map[string]*shardMetrics
	inFlight  atomic.Int64
	points    *obs.Counter
	pointErrs *obs.Counter
	stream    *obs.Counter

	robustCampaigns *obs.Counter
	robustTrials    *obs.Counter
	robustResumed   *obs.Counter
	robustActive    atomic.Int64

	optSearches *obs.Counter
	optPoints   *obs.Counter
	optResumed  *obs.Counter
	optActive   atomic.Int64
}

// shardMetrics is one shard's routing counters.
type shardMetrics struct {
	routed    *obs.Counter
	hedges    *obs.Counter
	failovers *obs.Counter
}

// newClusterMetrics builds the instrument set with one labeled family
// row per known shard, so the Prometheus view shows zero rows for idle
// shards instead of omitting them.
func newClusterMetrics(shards []string) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:             reg,
		perShard:        make(map[string]*shardMetrics, len(shards)),
		points:          reg.Counter("refocus_cluster_points_total", "Evaluate requests dispatched by the coordinator (sweep points and single evaluates).", nil),
		pointErrs:       reg.Counter("refocus_cluster_point_errors_total", "Dispatched points that failed on every ring successor (client-visible losses).", nil),
		stream:          reg.Counter("refocus_cluster_stream_lines_total", "Sweep results delivered over the coordinator's NDJSON streaming lane.", nil),
		robustCampaigns: reg.Counter("refocus_robustness_campaigns_total", "Robustness campaigns started on this coordinator (resumed campaigns count again).", nil),
		robustTrials:    reg.Counter("refocus_robustness_trials_total", "Robustness Monte Carlo trials dispatched across the shards by this coordinator.", nil),
		robustResumed:   reg.Counter("refocus_robustness_trials_resumed_total", "Robustness trials recovered from checkpoints instead of redispatched.", nil),
		optSearches:     reg.Counter("refocus_optimize_searches_total", "Design-space searches started on this coordinator (resumed searches count again).", nil),
		optPoints:       reg.Counter("refocus_optimize_points_total", "Design-space candidate points dispatched across the shards by this coordinator.", nil),
		optResumed:      reg.Counter("refocus_optimize_points_resumed_total", "Design-space candidate points recovered from checkpoints instead of redispatched.", nil),
	}
	reg.Gauge("refocus_cluster_in_flight", "Requests currently inside a coordinator handler.", nil,
		func() float64 { return float64(m.inFlight.Load()) })
	reg.Gauge("refocus_robustness_active_campaigns", "Robustness campaigns currently running on this coordinator.", nil,
		func() float64 { return float64(m.robustActive.Load()) })
	reg.Gauge("refocus_optimize_active_searches", "Design-space searches currently running on this coordinator.", nil,
		func() float64 { return float64(m.optActive.Load()) })
	for _, s := range shards {
		labels := obs.Labels{"shard": s}
		m.perShard[s] = &shardMetrics{
			routed:    reg.Counter("refocus_cluster_routed_total", "Points whose ring placement chose this shard as primary.", labels),
			hedges:    reg.Counter("refocus_cluster_hedges_total", "Hedged dispatches launched past this primary shard (slow or failed first attempt).", labels),
			failovers: reg.Counter("refocus_cluster_failovers_total", "Points won by a ring successor after this primary shard failed or stalled.", labels),
		}
	}
	return m
}

// shard returns the counters for one shard name (it must be a ring
// member; unknown names get a fresh unregistered row rather than a panic).
func (m *Metrics) shard(name string) *shardMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm, ok := m.perShard[name]
	if !ok {
		labels := obs.Labels{"shard": name}
		sm = &shardMetrics{
			routed:    m.reg.Counter("refocus_cluster_routed_total", "Points whose ring placement chose this shard as primary.", labels),
			hedges:    m.reg.Counter("refocus_cluster_hedges_total", "Hedged dispatches launched past this primary shard (slow or failed first attempt).", labels),
			failovers: m.reg.Counter("refocus_cluster_failovers_total", "Points won by a ring successor after this primary shard failed or stalled.", labels),
		}
		m.perShard[name] = sm
	}
	return sm
}

// writePrometheus renders the text exposition.
func (m *Metrics) writePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// ShardStats is one shard's externally visible routing counters.
type ShardStats struct {
	// Routed counts points placed on this shard as primary; Hedges the
	// dispatches that launched a second attempt past it; Failovers the
	// points a ring successor won after this primary failed or stalled.
	Routed    int64
	Hedges    int64
	Failovers int64
}

// Snapshot is the coordinator's /metrics JSON payload.
type Snapshot struct {
	// InFlight is the number of requests currently inside a handler.
	InFlight int64
	// Points counts dispatched evaluate requests; PointErrors the subset
	// that failed on every ring successor — the client-visible losses the
	// kill-a-shard CI gate asserts stay zero.
	Points      int64
	PointErrors int64
	// Failovers and Hedges sum the per-shard counters.
	Failovers int64
	Hedges    int64
	// StreamLines counts results delivered over the NDJSON lane.
	StreamLines int64
	// Robustness aggregates the coordinator-run campaign engine's
	// counters (same shape as the worker tier's).
	Robustness serve.RobustnessStats
	// Optimize aggregates the coordinator-run design-space search
	// engine's counters (same shape as the worker tier's).
	Optimize serve.OptimizeStats
	// Shards maps shard base URL to its routing counters.
	Shards map[string]ShardStats
}

// snapshot assembles the JSON payload.
func (m *Metrics) snapshot() Snapshot {
	s := Snapshot{
		InFlight:    m.inFlight.Load(),
		Points:      m.points.Value(),
		PointErrors: m.pointErrs.Value(),
		StreamLines: m.stream.Value(),
		Robustness: serve.RobustnessStats{
			Campaigns:     m.robustCampaigns.Value(),
			Active:        m.robustActive.Load(),
			Trials:        m.robustTrials.Value(),
			TrialsResumed: m.robustResumed.Value(),
		},
		Optimize: serve.OptimizeStats{
			Searches:      m.optSearches.Value(),
			Active:        m.optActive.Load(),
			Points:        m.optPoints.Value(),
			PointsResumed: m.optResumed.Value(),
		},
		Shards: make(map[string]ShardStats),
	}
	m.mu.Lock()
	rows := make(map[string]*shardMetrics, len(m.perShard))
	for name, sm := range m.perShard {
		rows[name] = sm
	}
	m.mu.Unlock()
	for name, sm := range rows {
		st := ShardStats{
			Routed:    sm.routed.Value(),
			Hedges:    sm.hedges.Value(),
			Failovers: sm.failovers.Value(),
		}
		s.Failovers += st.Failovers
		s.Hedges += st.Hedges
		s.Shards[name] = st
	}
	return s
}
