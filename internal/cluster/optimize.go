package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"refocus/internal/arch"
	"refocus/internal/opt"
	"refocus/internal/serve"
	"refocus/internal/serveclient"
)

// optimizeEval is the opt.PointEval backing coordinator-run searches:
// each candidate becomes an evaluate request dispatched onto the ring by
// its config-hash route key, riding the same hedged client chain
// (retries, breaker, dead-shard failover) ordinary points use. Routing
// by config hash means a candidate the search revisits — or one any
// earlier search evaluated — lands on the shard already holding its
// cached report. A shed candidate (the whole chain answering 429) waits
// out the Retry-After and redispatches — optimizer work is deferrable by
// definition.
func (c *Coordinator) optimizeEval(ctx context.Context, spec opt.Spec, cfg arch.SystemConfig, routeKey string) (opt.PointMetrics, error) {
	data, err := arch.ConfigJSON(cfg)
	if err != nil {
		return opt.PointMetrics{}, err
	}
	req := serve.EvaluateRequest{
		Config:  data,
		Network: spec.Network,
	}
	for {
		resp, _, err := c.dispatchKeyed(ctx, req, routeKey)
		if err == nil {
			return opt.PointMetricsFromReports(resp.Reports), nil
		}
		var se *serveclient.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
			return opt.PointMetrics{}, err
		}
		t := time.NewTimer(time.Second)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return opt.PointMetrics{}, fmt.Errorf("cluster: optimizer point canceled during backoff: %w", ctx.Err())
		}
	}
}

// handleOptimizeStart serves POST /v1/optimize, mirroring the worker
// tier's handler: validate the spec, start (or attach to / resume) the
// search, answer 202/200 with its status — or stream NDJSON incumbent
// updates when asked. The search itself runs in the coordinator process;
// only its candidate evaluations travel to the shards.
func (c *Coordinator) handleOptimizeStart(w http.ResponseWriter, r *http.Request) {
	var spec opt.Spec
	if err := c.decodeBody(w, r, &spec); err != nil {
		c.writeError(w, err)
		return
	}
	job, created, err := c.opt.Start(spec)
	if err != nil {
		if errors.Is(err, opt.ErrBusy) {
			w.Header().Set("Retry-After", "5")
			c.writeJSON(w, http.StatusTooManyRequests,
				serve.ErrorResponse{Error: err.Error(), Status: http.StatusTooManyRequests})
			return
		}
		c.writeError(w, serve.BadRequest(err))
		return
	}
	if serve.WantsNDJSON(r) {
		opt.StreamUpdates(w, r, job, c.metrics.stream.Inc)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	c.writeJSON(w, status, job.Status())
}

// handleOptimizeStatus serves GET /v1/optimize/{id} from the live job or
// the checkpoint on disk.
func (c *Coordinator) handleOptimizeStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job, ok := c.opt.Get(id); ok {
		c.writeJSON(w, http.StatusOK, job.Status())
		return
	}
	st, err := c.opt.StatusFromDisk(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			c.writeJSON(w, http.StatusNotFound,
				serve.ErrorResponse{Error: fmt.Sprintf("cluster: no search %q", id), Status: http.StatusNotFound})
			return
		}
		c.writeError(w, err)
		return
	}
	c.writeJSON(w, http.StatusOK, st)
}
