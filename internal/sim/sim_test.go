package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"refocus/internal/arch"
	"refocus/internal/nn"
)

// TestLoadConfigOverlay: a file with a Base preset only overrides the
// fields it spells out; everything else keeps the preset's values.
func TestLoadConfigOverlay(t *testing.T) {
	cfg, err := LoadConfig([]byte(`{"Base": "fb", "Name": "FB-M32", "M": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	fb := arch.FB()
	if cfg.Name != "FB-M32" || cfg.M != 32 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.NRFCU != fb.NRFCU || cfg.T != fb.T || cfg.Reuses != fb.Reuses || cfg.Buffer != fb.Buffer {
		t.Errorf("base preset fields lost: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("overlaid config should validate: %v", err)
	}
}

// TestLoadConfigFullFile: a complete dumped config reloads identically
// without a Base.
func TestLoadConfigFullFile(t *testing.T) {
	fb := arch.FB()
	data, err := arch.ConfigJSON(fb)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != fb {
		t.Errorf("reloaded config differs:\ngot  %+v\nwant %+v", cfg, fb)
	}
}

// TestLoadConfigErrors: malformed input, unknown Base presets, typo'd
// fields and missing files all come back as errors, never panics.
func TestLoadConfigErrors(t *testing.T) {
	cases := map[string]string{
		"malformed JSON":   `{"Base": `,
		"unknown base":     `{"Base": "warp-drive"}`,
		"unknown field":    `{"Base": "fb", "NRFCUU": 20}`,
		"wrong field type": `{"Base": "fb", "NRFCU": "many"}`,
	}
	for name, data := range cases {
		if _, err := LoadConfig([]byte(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Incomplete design points parse fine but fail validation with a field
	// name — the pipeline's contract.
	cfg, err := LoadConfig([]byte(`{"Name": "incomplete", "NRFCU": 16}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err == nil {
		t.Error("incomplete config should fail validation")
	}
}

// TestResolveConfig: the file takes precedence over the preset name.
func TestResolveConfig(t *testing.T) {
	cfg, err := ResolveConfig("fb", "")
	if err != nil || cfg.Name != "ReFOCUS-FB" {
		t.Fatalf("preset resolve: %v, %+v", err, cfg)
	}
	path := filepath.Join(t.TempDir(), "point.json")
	if err := os.WriteFile(path, []byte(`{"Base": "ff", "Name": "from-file"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = ResolveConfig("fb", path)
	if err != nil || cfg.Name != "from-file" {
		t.Fatalf("file resolve: %v, %+v", err, cfg)
	}
	if _, err := ResolveConfig("nope", ""); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestResolveNetworks: single names, "all", and the unknown-name error.
func TestResolveNetworks(t *testing.T) {
	one, err := ResolveNetworks("ResNet-18")
	if err != nil || len(one) != 1 || one[0].Name != "ResNet-18" {
		t.Fatalf("single resolve: %v, %v", err, one)
	}
	all, err := ResolveNetworks("all")
	if err != nil || len(all) < 2 {
		t.Fatalf("all resolve: %v, %d networks", err, len(all))
	}
	_, err = ResolveNetworks("LeNet-9000")
	if err == nil || !strings.Contains(err.Error(), "ResNet-18") {
		t.Errorf("unknown network error should list the vocabulary: %v", err)
	}
}

// TestRunPipeline: the full resolve → override → validate → evaluate →
// render path, in both text and JSON, plus the error paths user input hits.
func TestRunPipeline(t *testing.T) {
	var buf bytes.Buffer
	err := Run(Options{Preset: "fb", Network: "ResNet-18"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"config ReFOCUS-FB", "ResNet-18", "FPS/W"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := Run(Options{Preset: "fb", Network: "ResNet-18", JSON: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Config": "ReFOCUS-FB"`) {
		t.Errorf("JSON output missing config name:\n%s", buf.String())
	}

	buf.Reset()
	if err := Run(Options{Preset: "fb", Network: "ResNet-18", Profile: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hot layer") {
		t.Error("profile output missing hot layers")
	}

	// An override that breaks the config is caught by validation.
	err = Run(Options{
		Preset:   "fb",
		Network:  "ResNet-18",
		Override: func(c *arch.SystemConfig) { c.Reuses = 0 },
	}, &buf)
	if err == nil {
		t.Error("invalid override accepted")
	}

	if err := Run(Options{Preset: "nope", Network: "ResNet-18"}, &buf); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := Run(Options{Preset: "fb", Network: "nope"}, &buf); err == nil {
		t.Error("unknown network accepted")
	}
}

// TestEvaluateResult: the structured pipeline returns the resolved
// config and one report per network, matching what Run renders.
func TestEvaluateResult(t *testing.T) {
	res, err := Evaluate(Options{Preset: "fb", Network: "all"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Name != "ReFOCUS-FB" {
		t.Errorf("resolved config %q, want ReFOCUS-FB", res.Config.Name)
	}
	if len(res.Reports) != len(res.Networks) || len(res.Reports) < 2 {
		t.Fatalf("got %d reports for %d networks", len(res.Reports), len(res.Networks))
	}
	for i, r := range res.Reports {
		if r.Network != res.Networks[i].Name {
			t.Errorf("report %d is for %s, want %s", i, r.Network, res.Networks[i].Name)
		}
		if r.FPS <= 0 {
			t.Errorf("report %d has non-positive FPS", i)
		}
	}
	if _, err := Evaluate(Options{Preset: "nope", Network: "all"}); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestCacheKey: the key is stable across construction paths of the same
// design point, distinguishes networks, and distinguishes design points.
func TestCacheKey(t *testing.T) {
	fromPreset, err := CacheKey(arch.FB(), nn.ResNet50())
	if err != nil {
		t.Fatal(err)
	}
	// The same design point expressed as a full serialized config.
	data, err := arch.ConfigJSON(arch.FB())
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := CacheKey(reloaded, nn.ResNet50())
	if err != nil {
		t.Fatal(err)
	}
	if fromPreset != fromFile {
		t.Errorf("same design point keyed differently:\n%s\n%s", fromPreset, fromFile)
	}
	otherNet, _ := CacheKey(arch.FB(), nn.AlexNet())
	if otherNet == fromPreset {
		t.Error("different networks share a key")
	}
	otherCfg, _ := CacheKey(arch.FF(), nn.ResNet50())
	if otherCfg == fromPreset {
		t.Error("different design points share a key")
	}
	if !strings.HasSuffix(fromPreset, "|"+nn.MustNetworkHash(nn.ResNet50())) {
		t.Errorf("key should end with the network hash: %s", fromPreset)
	}
	// An inline spec identical to the registry entry shares the key.
	data, err = nn.NetworkJSON(nn.ResNet50())
	if err != nil {
		t.Fatal(err)
	}
	inline, err := nn.ParseNetwork(data)
	if err != nil {
		t.Fatal(err)
	}
	fromInline, err := CacheKey(arch.FB(), inline)
	if err != nil {
		t.Fatal(err)
	}
	if fromInline != fromPreset {
		t.Errorf("inline spec of a registry network keyed differently:\n%s\n%s", fromInline, fromPreset)
	}
}

// TestListKnown names every preset, every alias, and every benchmark.
func TestListKnown(t *testing.T) {
	var buf bytes.Buffer
	ListKnown(&buf)
	s := buf.String()
	for _, p := range arch.Presets() {
		if !strings.Contains(s, p.Name) {
			t.Errorf("listing missing preset %s", p.Name)
		}
		for _, a := range p.Aliases {
			if !strings.Contains(s, a) {
				t.Errorf("listing missing alias %s", a)
			}
		}
	}
	if !strings.Contains(s, "ResNet-50") || !strings.Contains(s, "all") {
		t.Error("listing missing networks")
	}
}
