// Package sim is the shared run pipeline behind the refocus command-line
// tools and examples: resolve a design point (named preset or JSON config
// file) and a benchmark set, apply overrides, validate, evaluate, and
// render the reports as text or JSON. The binaries keep only flag parsing;
// everything that used to be duplicated name-switch glue lives here, so a
// future serving layer can reuse the exact same lifecycle for requests.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"refocus/internal/arch"
	"refocus/internal/faults"
	"refocus/internal/nn"
	"refocus/internal/obs"
	"refocus/internal/phys"
)

// Options selects what to evaluate and how to render it.
type Options struct {
	// Preset names a registry design point (arch.PresetByName). Ignored
	// when ConfigFile is set.
	Preset string
	// ConfigFile is a JSON design point (see LoadConfigFile for the
	// schema, including the optional "Base" preset overlay).
	ConfigFile string
	// Network is a registered network name (nn.ByName, case-insensitive)
	// or "all" for the paper's five CNN benchmarks. Ignored when
	// NetworkFile or NetworkSpec is set.
	Network string
	// NetworkFile is a JSON network spec to evaluate instead of a named
	// workload (see nn.ParseNetwork for the schema).
	NetworkFile string
	// NetworkSpec is an already-parsed inline network. The serving layer
	// lands request-body specs here; a spec given both ways is an error.
	NetworkSpec *nn.Network
	// Override mutates the resolved config before validation (flag
	// overrides like -batch land here). Optional.
	Override func(*arch.SystemConfig)
	// WithDRAM includes DRAM power in the printed totals (§7.3 view).
	WithDRAM bool
	// Profile also prints the top-N layer consumers when positive.
	Profile int
	// JSON renders machine-readable reports instead of text.
	JSON bool
	// Faults, when non-nil, evaluates the degraded machine the fault
	// set leaves behind (see internal/faults) instead of the healthy
	// design point. FaultsFile loads it from JSON; a set given both
	// ways is an error.
	Faults     *faults.FaultSet
	FaultsFile string
}

// resolveFaults returns the fault set the options name, if any.
func (o Options) resolveFaults() (*faults.FaultSet, error) {
	if o.Faults != nil && o.FaultsFile != "" {
		return nil, fmt.Errorf("sim: both Faults and FaultsFile set; pick one")
	}
	if o.FaultsFile != "" {
		fs, err := faults.Load(o.FaultsFile)
		if err != nil {
			return nil, err
		}
		return &fs, nil
	}
	return o.Faults, nil
}

// ResolveConfig returns the design point the options name: the config
// file when set (strict JSON, optionally overlaid on a "Base" preset),
// otherwise the named preset. The result is not yet validated — Run
// validates after overrides are applied.
func ResolveConfig(preset, configFile string) (arch.SystemConfig, error) {
	if configFile != "" {
		return LoadConfigFile(configFile)
	}
	return arch.PresetByName(preset)
}

// configFileSchema is the on-disk form: every arch.SystemConfig field plus
// an optional Base naming the preset the file's fields overlay. A file
// without Base must therefore spell out a complete design point.
type configFileSchema struct {
	Base string
	arch.SystemConfig
}

// LoadConfigFile reads a JSON design point. Unknown fields are rejected;
// fields absent from the file keep the Base preset's values (or Go zero
// values without a Base, which validation will then reject with a field
// name rather than a crash).
func LoadConfigFile(path string) (arch.SystemConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return arch.SystemConfig{}, fmt.Errorf("sim: %w", err)
	}
	return LoadConfig(data)
}

// LoadConfig parses the JSON design-point schema of LoadConfigFile.
func LoadConfig(data []byte) (arch.SystemConfig, error) {
	var base struct{ Base string }
	if err := json.Unmarshal(data, &base); err != nil {
		return arch.SystemConfig{}, fmt.Errorf("sim: parsing config: %w", err)
	}
	file := configFileSchema{}
	if base.Base != "" {
		cfg, err := arch.PresetByName(base.Base)
		if err != nil {
			return arch.SystemConfig{}, fmt.Errorf("sim: config Base: %w", err)
		}
		file.SystemConfig = cfg
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return arch.SystemConfig{}, fmt.Errorf("sim: parsing config: %w", err)
	}
	return file.SystemConfig, nil
}

// ResolveNetworks returns the workload set a -network argument names:
// one registered network (case-insensitive), or the paper's five CNN
// benchmarks for "all". A miss lists every valid name.
func ResolveNetworks(name string) ([]nn.Network, error) {
	if strings.EqualFold(name, "all") {
		return nn.Benchmarks(), nil
	}
	net, ok := nn.ByName(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown network %q (known: %s, or \"all\")", name, strings.Join(nn.Names(), ", "))
	}
	return []nn.Network{net}, nil
}

// LoadNetworkFile reads and strictly parses a JSON network spec.
func LoadNetworkFile(path string) (nn.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nn.Network{}, fmt.Errorf("sim: %w", err)
	}
	return nn.ParseNetwork(data)
}

// Workloads returns the networks the options select: the inline
// spec or spec file when given (validated, overriding any Network name),
// otherwise the named workload set. Tools that need the resolved
// workloads without evaluating (-dump-network) call this directly.
func (o Options) Workloads() ([]nn.Network, error) {
	if o.NetworkSpec != nil && o.NetworkFile != "" {
		return nil, fmt.Errorf("sim: both NetworkSpec and NetworkFile set; pick one")
	}
	if o.NetworkSpec != nil {
		if err := o.NetworkSpec.Validate(); err != nil {
			return nil, err
		}
		return []nn.Network{*o.NetworkSpec}, nil
	}
	if o.NetworkFile != "" {
		net, err := LoadNetworkFile(o.NetworkFile)
		if err != nil {
			return nil, err
		}
		return []nn.Network{net}, nil
	}
	return ResolveNetworks(o.Network)
}

// Result is the structured outcome of one pipeline run: the resolved
// (and validated) design point, the benchmark set, and one report per
// network in input order. The serving layer returns these directly;
// the command-line tools render them.
type Result struct {
	Config   arch.SystemConfig
	Networks []nn.Network
	Reports  []arch.Report
	// Degradation is the fault remapping record when the run evaluated
	// a degraded machine (Options.Faults/FaultsFile); nil for healthy
	// runs. Reports then carry the degraded numbers.
	Degradation *faults.Degradation
}

// Evaluate runs the pipeline up to (but not including) rendering:
// resolve → override → validate → evaluate. Every failure comes back as
// an error carrying the offending field or name; nothing panics on user
// input.
func Evaluate(opts Options) (Result, error) {
	return EvaluateCtx(context.Background(), opts)
}

// EvaluateCtx is Evaluate honoring the context: cancellation stops the
// evaluation fan-out, and a context carrying an obs.Trace records one
// span per pipeline stage (resolve, validate, evaluate) with the
// per-point spans of arch.EvaluateAllCtx nested inside.
func EvaluateCtx(ctx context.Context, opts Options) (Result, error) {
	resolveSpan := obs.StartSpan(ctx, "sim.resolve")
	cfg, err := ResolveConfig(opts.Preset, opts.ConfigFile)
	if err != nil {
		resolveSpan.End()
		return Result{}, err
	}
	if opts.Override != nil {
		opts.Override(&cfg)
	}
	resolveSpan.SetAttr("config", cfg.Name)
	resolveSpan.End()
	validateSpan := obs.StartSpan(ctx, "sim.validate")
	err = cfg.Validate()
	validateSpan.End()
	if err != nil {
		return Result{}, err
	}
	nets, err := opts.Workloads()
	if err != nil {
		return Result{}, err
	}
	fs, err := opts.resolveFaults()
	if err != nil {
		return Result{}, err
	}
	evalSpan := obs.StartSpan(ctx, "sim.evaluate")
	evalSpan.SetAttr("networks", len(nets))
	defer evalSpan.End()
	if fs != nil {
		degraded, err := faults.EvaluateAllCtx(ctx, cfg, *fs, nets)
		if err != nil {
			return Result{}, err
		}
		res := Result{Config: cfg, Networks: nets, Reports: make([]arch.Report, len(degraded))}
		for i, r := range degraded {
			res.Reports[i] = r.Report
		}
		if len(degraded) > 0 {
			deg := degraded[0].Degradation
			res.Degradation = &deg
		}
		return res, nil
	}
	reports, err := arch.EvaluateAllCtx(ctx, cfg, nets)
	if err != nil {
		return Result{}, err
	}
	return Result{Config: cfg, Networks: nets, Reports: reports}, nil
}

// CacheKey returns the canonical identity of one (design point, network)
// evaluation: arch.ConfigHash joined with nn.NetworkHash. Requests that
// resolve to the same design point and workload — via presets, Base
// overlays, raw JSON in any field order, a registered name in any case,
// or an inline spec identical to a registry entry — share a key, so a
// result cache keyed on it serves them all from one evaluation.
func CacheKey(cfg arch.SystemConfig, net nn.Network) (string, error) {
	cfgHash, err := arch.ConfigHash(cfg)
	if err != nil {
		return "", err
	}
	netHash, err := nn.NetworkHash(net)
	if err != nil {
		return "", err
	}
	return cfgHash + "|" + netHash, nil
}

// Run executes the full pipeline: resolve → override → validate →
// evaluate → render. It shares Evaluate's error convention.
func Run(opts Options, out io.Writer) error {
	return RunCtx(context.Background(), opts, out)
}

// RunCtx is Run honoring the context; with an obs.Trace attached, the
// render stage gets its own span next to EvaluateCtx's pipeline spans.
func RunCtx(ctx context.Context, opts Options, out io.Writer) error {
	res, err := EvaluateCtx(ctx, opts)
	if err != nil {
		return err
	}
	renderSpan := obs.StartSpan(ctx, "sim.render")
	defer renderSpan.End()
	if opts.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Reports)
	}
	return renderText(res, opts, out)
}

// renderText prints the human-readable report refocus-sim historically
// emitted: a config header, then per-network power/performance lines.
// Degraded runs announce the remapping before any number.
func renderText(res Result, opts Options, out io.Writer) error {
	cfg, nets, reports := res.Config, res.Networks, res.Reports
	area := arch.MustComputeArea(cfg) // cfg validated by Run
	fmt.Fprintf(out, "config %s: %d RFCUs, T=%d, %d wavelengths, M=%d, buffer=%v, reuses=%d\n",
		cfg.Name, cfg.NRFCU, cfg.T, cfg.NLambda, cfg.M, cfg.Buffer, cfg.Reuses)
	if d := res.Degradation; d != nil {
		name := d.FaultSet
		if name == "" {
			name = "unnamed fault set"
		}
		fmt.Fprintf(out, "DEGRADED by %s: %d/%d healthy RFCUs, effective λ=%d, buffer=%v, reuses=%d (trip loss %.3f dB)\n",
			name, d.HealthyRFCUs, cfg.NRFCU, d.EffectiveLambda, d.EffectiveBuffer, d.EffectiveReuses, d.DelayTripLossDB)
	}
	fmt.Fprintf(out, "area: %.1f mm² total (%.1f photonic, %.1f SRAM+buffers, %.1f converters+logic)\n\n",
		phys.M2ToMM2(area.Total()), phys.M2ToMM2(area.Photonic()),
		phys.M2ToMM2(area.SRAM+area.DataBuffer), phys.M2ToMM2(area.Converters+area.CMOSLogic))

	for i, net := range nets {
		r := reports[i]
		p := r.Power
		total := p.Total()
		if opts.WithDRAM {
			total = p.TotalWithDRAM()
		}
		fmt.Fprintf(out, "%s (%.2f GMACs, %d layers)\n", net.Name, net.TotalMACs()/1e9, net.LayerCount())
		fmt.Fprintf(out, "  latency %.3f ms   FPS %.0f   power %.2f W   FPS/W %.1f   FPS/mm² %.1f\n",
			r.Latency*1e3, r.FPS, total, r.FPS/total, r.FPSPerMM2)
		fmt.Fprintf(out, "  power: inDAC %.2f  wDAC %.2f  ADC %.2f  laser %.2f  MRR %.3f  SRAM %.2f  buffers %.2f  CMOS %.2f  (DRAM %.2f)\n",
			p.InputDAC, p.WeightDAC, p.ADC, p.Laser, p.MRR,
			p.ActivationSRAM+p.WeightSRAM+p.SRAMLeakage, p.DataBuffers, p.CMOS, p.DRAM)
		if opts.Profile > 0 {
			profiles, err := arch.EvaluateLayers(cfg, net)
			if err != nil {
				return err
			}
			for _, lp := range arch.TopConsumers(profiles, "cycles", opts.Profile) {
				detail := string(lp.Layer.Kind()) + ", multi-pass"
				if lp.Plan != nil {
					detail = fmt.Sprintf("%v, %d regions", lp.Plan.Geometry.Strategy, lp.Plan.Regions)
				}
				fmt.Fprintf(out, "  hot layer %-18s %5.1f%% of cycles  %5.1f%% of energy (%s)\n",
					lp.Layer.Name(), 100*lp.ShareOfCycles, 100*lp.ShareOfEnergy, detail)
			}
		}
	}
	return nil
}

// ListKnown prints the preset registry and benchmark networks — the
// vocabulary of -config/-network — one entry per line.
func ListKnown(out io.Writer) {
	fmt.Fprintln(out, "presets:")
	for _, p := range arch.Presets() {
		alias := ""
		if len(p.Aliases) > 0 {
			alias = " (" + strings.Join(p.Aliases, ", ") + ")"
		}
		fmt.Fprintf(out, "  %-18s%s  %s\n", p.Name, alias, p.Description)
	}
	fmt.Fprintln(out, "networks:")
	for _, n := range nn.Networks() {
		kinds := map[nn.LayerKind]bool{}
		parts := make([]string, 0, 3)
		for _, l := range n.Layers {
			if k := l.Kind(); !kinds[k] {
				kinds[k] = true
				parts = append(parts, string(k))
			}
		}
		fmt.Fprintf(out, "  %-10s %3d layers  %6.2f GMACs  (%s)\n",
			n.Name, n.LayerCount(), n.TotalMACs()/1e9, strings.Join(parts, ", "))
	}
	fmt.Fprintln(out, "  all        the five CNN benchmark networks")
}

// ListNetworks prints the full workload registry with content hashes —
// the identities the serving cache and -dump-network round-trips key on.
func ListNetworks(out io.Writer) {
	fmt.Fprintln(out, "name        layers  GMACs     hash")
	for _, n := range nn.Networks() {
		fmt.Fprintf(out, "%-11s %5d  %8.2f  %s\n",
			n.Name, n.LayerCount(), n.TotalMACs()/1e9, nn.MustNetworkHash(n))
	}
}

// Main wraps a tool's run function with the uniform error convention the
// three refocus binaries share: errors go to stderr prefixed by the tool
// name, and the process exits nonzero.
func Main(tool string, run func(args []string, out io.Writer) error) {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}
