package memory

import (
	"math"
	"testing"
	"testing/quick"

	"refocus/internal/phys"
)

func TestActivationVsWeightSRAMEnergyRatio(t *testing.T) {
	activation := MustSRAM("activation", 4*phys.MB, 32)
	weight := MustSRAM("weight", 512*phys.KB, 32)
	ratio := activation.AccessEnergyPerByte() / weight.AccessEnergyPerByte()
	// Paper §5.2: the 4 MB activation SRAM has >4× the access energy of a
	// 512 KB weight SRAM.
	if ratio <= 4 {
		t.Errorf("activation/weight access energy ratio = %.2f, paper says >4", ratio)
	}
	if ratio > 6 {
		t.Errorf("ratio %.2f implausibly high for an 8× capacity step", ratio)
	}
}

func TestBuffersCheaperThanSRAM(t *testing.T) {
	activation := MustSRAM("activation", 4*phys.MB, 32)
	buffer := MustSRAM("input buffer", 8*phys.KB, 32)
	if buffer.AccessEnergyPerByte() >= activation.AccessEnergyPerByte()/10 {
		t.Errorf("an 8 KB buffer should cost <10%% of the 4 MB SRAM per byte: %g vs %g",
			buffer.AccessEnergyPerByte(), activation.AccessEnergyPerByte())
	}
}

// TestSRAMAreaMatchesFigure9: the ReFOCUS memory complement (4 MB shared
// activation SRAM + 16×512 KB weight SRAM + data buffers) occupies about
// 12.4 mm² (paper Figure 9).
func TestSRAMAreaMatchesFigure9(t *testing.T) {
	total := MustSRAM("activation", 4*phys.MB, 32).Area()
	for i := 0; i < 16; i++ {
		total += MustSRAM("weight", 512*phys.KB, 32).Area()
	}
	plan := mustPlan(t, FilterMajor, 256, 16, 2, 512, 512, 16, 1)
	total += plan.InputBuffer(true).Area()
	for i := 0; i < 16; i++ {
		total += plan.OutputBuffer(true).Area()
	}
	got := phys.M2ToMM2(total)
	if math.Abs(got-12.4) > 1.5 {
		t.Errorf("memory area = %.2f mm², paper Figure 9 says ≈12.4", got)
	}
}

func TestSRAMEnergyMonotonicInCapacity(t *testing.T) {
	f := func(a, b uint32) bool {
		ca := int(a%(8*1024*1024)) + 1024
		cb := int(b%(8*1024*1024)) + 1024
		if ca > cb {
			ca, cb = cb, ca
		}
		sa := MustSRAM("a", ca, 32)
		sb := MustSRAM("b", cb, 32)
		return sa.AccessEnergyPerByte() <= sb.AccessEnergyPerByte()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSRAMAccessEnergyLinear(t *testing.T) {
	s := MustSRAM("s", 64*phys.KB, 32)
	if d := s.AccessEnergy(1000) - 1000*s.AccessEnergyPerByte(); math.Abs(d) > 1e-24 {
		t.Error("AccessEnergy not linear in bytes")
	}
}

func TestSRAMLeakageScales(t *testing.T) {
	small := MustSRAM("s", 1*phys.MB, 32)
	big := MustSRAM("b", 4*phys.MB, 32)
	if r := big.LeakagePower() / small.LeakagePower(); math.Abs(r-4) > 1e-9 {
		t.Errorf("leakage ratio %g, want 4", r)
	}
	// Leakage of the whole 12 MB complement stays well under 100 mW —
	// negligible against the 10-16 W system (so the paper can omit it).
	if p := MustSRAM("all", 12*phys.MB, 32).LeakagePower(); p > 0.1 {
		t.Errorf("12 MB leakage %g W too high", p)
	}
}

func TestPlanBuffersFormulas(t *testing.T) {
	// ReFOCUS parameters: T=256, M=16, Nλ=2, NF=512, NC=512, 16 RFCUs.
	p1 := mustPlan(t, FilterMajor, 256, 16, 2, 512, 512, 16, 15)
	if p1.InputBufferBytes != 256*16*2 {
		t.Errorf("choice (1) B_in = %d, want %d", p1.InputBufferBytes, 256*16*2)
	}
	if p1.OutputBufferBytesPerRFCU != 256*512/16 {
		t.Errorf("choice (1) B_out = %d, want %d", p1.OutputBufferBytesPerRFCU, 256*512/16)
	}
	p2 := mustPlan(t, ChannelMajor, 256, 16, 2, 512, 512, 16, 15)
	if p2.InputBufferBytes != 256*512*2 {
		t.Errorf("choice (2) B_in = %d, want %d", p2.InputBufferBytes, 256*512*2)
	}
	if p2.OutputBufferBytesPerRFCU != 256*16 {
		t.Errorf("choice (2) B_out = %d, want %d", p2.OutputBufferBytesPerRFCU, 256*16)
	}
}

// TestFilterMajorHasSmallerInputBuffer: the paper adopts choice (1) because
// the input buffer — accessed every cycle — must stay small and fast;
// choice (2)'s input buffer is far larger for realistic channel counts.
func TestFilterMajorHasSmallerInputBuffer(t *testing.T) {
	p1 := mustPlan(t, FilterMajor, 256, 16, 2, 512, 512, 16, 15)
	p2 := mustPlan(t, ChannelMajor, 256, 16, 2, 512, 512, 16, 15)
	if p1.InputBufferBytes >= p2.InputBufferBytes {
		t.Errorf("choice (1) input buffer %d should be smaller than choice (2) %d",
			p1.InputBufferBytes, p2.InputBufferBytes)
	}
	// And its access energy per byte is correspondingly lower.
	e1 := p1.InputBuffer(false).AccessEnergyPerByte()
	e2 := p2.InputBuffer(false).AccessEnergyPerByte()
	if e1 >= e2 {
		t.Errorf("choice (1) input buffer energy %g should undercut choice (2) %g", e1, e2)
	}
}

func TestPingPongDoubles(t *testing.T) {
	p := mustPlan(t, FilterMajor, 256, 16, 2, 512, 512, 16, 1)
	if p.InputBuffer(true).CapacityBytes != 2*p.InputBuffer(false).CapacityBytes {
		t.Error("ping-pong should double the buffer capacity")
	}
}

func TestDefaultHBM2(t *testing.T) {
	d := DefaultHBM2()
	// O'Connor et al. report ≈3.97 pJ/bit for HBM2.
	wantPerByte := 3.97 * 8 * 1e-12
	if math.Abs(d.EnergyPerByte-wantPerByte) > 1e-15 {
		t.Errorf("HBM2 energy per byte = %g, want %g", d.EnergyPerByte, wantPerByte)
	}
	// DRAM must dwarf even the big activation SRAM per byte — the §7.3
	// observation that DRAM dominates once on-chip access is optimized.
	sram := MustSRAM("activation", 4*phys.MB, 32)
	if d.EnergyPerByte < 10*sram.AccessEnergyPerByte() {
		t.Errorf("HBM2 per-byte energy %g should be >10× activation SRAM %g",
			d.EnergyPerByte, sram.AccessEnergyPerByte())
	}
}

// mustPlan unwraps PlanBuffers for known-good test parameters.
func mustPlan(t *testing.T, choice DataflowChoice, args ...int) BufferPlan {
	t.Helper()
	p, err := PlanBuffers(choice, args[0], args[1], args[2], args[3], args[4], args[5], args[6])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewSRAM("bad", 0, 32); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSRAM("bad", 1024, 0); err == nil {
		t.Error("zero word width accepted")
	}
	if _, err := PlanBuffers(FilterMajor, 0, 16, 2, 512, 512, 16, 1); err == nil {
		t.Error("zero tile size accepted")
	}
	if _, err := PlanBuffers(DataflowChoice(9), 256, 16, 2, 512, 512, 16, 1); err == nil {
		t.Error("unknown dataflow choice accepted")
	}
	if _, err := PlanBuffers(FilterMajor, 8, 16, 2, 1, 512, 16, 1); err == nil {
		t.Error("empty output buffer (N_F < N_RFCU) accepted")
	}
}
