// Package memory provides the CACTI-style analytical SRAM model, the
// §5.3.3 data-buffer sizing rules, and the HBM2 DRAM energy model that the
// ReFOCUS evaluation consumes. The paper used CACTI 6.0 [43]; this package
// substitutes a capacity-scaling law calibrated so the paper's observable
// consequences hold — in particular that the 4 MB shared activation SRAM
// costs >4× the access energy of a 512 KB weight SRAM (paper §5.2) and
// that SRAM plus buffers occupy ≈12.4 mm² (paper Figure 9).
package memory

import (
	"fmt"
	"math"

	"refocus/internal/phys"
)

// Calibration constants for the 14 nm-class SRAM scaling law. Access
// energy per byte grows as capacity^energyExponent, anchored at a 32 KB
// array; the exponent is fitted so the paper's 4 MB-vs-512 KB ">4×" ratio
// holds (8^0.7 ≈ 4.3). Area and leakage scale linearly with capacity at
// densities typical of 14 nm compiled SRAM.
const (
	anchorCapacity      = 32 * phys.KB
	anchorEnergyPerByte = 0.025 * phys.PJ // pJ/byte at 32 KB
	energyExponent      = 0.7
	areaPerByte         = 1.0 * phys.MM2 / (1024 * 1024) // 1 mm² per MB
	leakagePerByte      = 2e-3 / (1024 * 1024)           // 2 mW per MB
)

// SRAM is an on-chip SRAM array or data buffer.
type SRAM struct {
	// Name labels the array in reports ("activation SRAM", "input buffer").
	Name string
	// CapacityBytes is the array capacity.
	CapacityBytes int
	// WordBytes is the access width in bytes (energy is charged per byte,
	// so this only matters for bandwidth checks).
	WordBytes int
}

// NewSRAM validates and returns an SRAM model.
func NewSRAM(name string, capacityBytes, wordBytes int) (SRAM, error) {
	if capacityBytes <= 0 {
		return SRAM{}, fmt.Errorf("memory: %s SRAM: non-positive capacity %d", name, capacityBytes)
	}
	if wordBytes <= 0 {
		return SRAM{}, fmt.Errorf("memory: %s SRAM: non-positive word width %d", name, wordBytes)
	}
	return SRAM{Name: name, CapacityBytes: capacityBytes, WordBytes: wordBytes}, nil
}

// MustSRAM is NewSRAM for call sites whose parameters were already
// validated (a failure there is an internal invariant violation).
func MustSRAM(name string, capacityBytes, wordBytes int) SRAM {
	s, err := NewSRAM(name, capacityBytes, wordBytes)
	if err != nil {
		panic("memory: internal: " + err.Error())
	}
	return s
}

// AccessEnergyPerByte returns the read/write energy per byte in joules.
func (s SRAM) AccessEnergyPerByte() float64 {
	ratio := float64(s.CapacityBytes) / float64(anchorCapacity)
	return anchorEnergyPerByte * math.Pow(ratio, energyExponent)
}

// AccessEnergy returns the energy to move n bytes through the array.
func (s SRAM) AccessEnergy(bytes float64) float64 {
	return bytes * s.AccessEnergyPerByte()
}

// Area returns the array area in m².
func (s SRAM) Area() float64 { return float64(s.CapacityBytes) * areaPerByte }

// LeakagePower returns static power in watts.
func (s SRAM) LeakagePower() float64 { return float64(s.CapacityBytes) * leakagePerByte }

// DRAM models the off-chip memory. The paper profiles HBM2 at the
// fine-grained-DRAM figure of O'Connor et al. MICRO'17 [44], ≈3.97 pJ/bit.
type DRAM struct {
	EnergyPerByte float64
}

// DefaultHBM2 returns the HBM2 model used in §7.3.
func DefaultHBM2() DRAM { return DRAM{EnergyPerByte: 3.97 * 8 * phys.PJ} }

// AccessEnergy returns the energy to transfer n bytes.
func (d DRAM) AccessEnergy(bytes float64) float64 { return bytes * d.EnergyPerByte }

// DataflowChoice selects between the two §5.3.3 orderings after a reuse
// window completes.
type DataflowChoice int

const (
	// FilterMajor (the paper's choice (1), adopted by ReFOCUS): keep the
	// input channel group and walk filters — small input buffer, large
	// output buffer.
	FilterMajor DataflowChoice = iota
	// ChannelMajor (choice (2)): keep the filters and walk channel groups
	// — large input buffer, small output buffer.
	ChannelMajor
)

func (c DataflowChoice) String() string {
	switch c {
	case FilterMajor:
		return "filter-major"
	case ChannelMajor:
		return "channel-major"
	default:
		return fmt.Sprintf("DataflowChoice(%d)", int(c))
	}
}

// Validate reports an out-of-range choice.
func (c DataflowChoice) Validate() error {
	if c != FilterMajor && c != ChannelMajor {
		return fmt.Errorf("memory: unknown dataflow choice %d", int(c))
	}
	return nil
}

// MarshalJSON encodes the choice as its string name so serialized design
// points stay readable and stable across constant reordering.
func (c DataflowChoice) MarshalJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON accepts the string names emitted by MarshalJSON.
func (c *DataflowChoice) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"filter-major"`:
		*c = FilterMajor
	case `"channel-major"`:
		*c = ChannelMajor
	default:
		return fmt.Errorf("memory: unknown dataflow choice %s (want \"filter-major\" or \"channel-major\")", data)
	}
	return nil
}

// BufferPlan captures the input/output data-buffer sizing of §5.3.3.
type BufferPlan struct {
	Choice DataflowChoice
	// InputBufferBytes is shared by all RFCUs (inputs broadcast).
	InputBufferBytes int
	// OutputBufferBytesPerRFCU is private to each RFCU.
	OutputBufferBytesPerRFCU int
}

// PlanBuffers applies the paper's sizing formulas:
//
//	choice (1): B_in = T·M·N_λ        B_out = T·N_F/N_RFCU
//	choice (2): B_in = T·N_C·N_λ      B_out = T·(R+1)
//
// where T is the tile size, M the delay length in cycles, N_λ the
// wavelength count, N_F/N_C the maximum filters/channels per layer of the
// target networks, and R the optical reuse count. All quantities are in
// bytes at 8-bit precision.
func PlanBuffers(choice DataflowChoice, t, m, nLambda, nFilters, nChannels, nRFCU, reuses int) (BufferPlan, error) {
	if t <= 0 || m <= 0 || nLambda <= 0 || nFilters <= 0 || nChannels <= 0 || nRFCU <= 0 || reuses < 0 {
		return BufferPlan{}, fmt.Errorf("memory: buffer plan parameters must be positive (T=%d M=%d Nλ=%d N_F=%d N_C=%d N_RFCU=%d R=%d)",
			t, m, nLambda, nFilters, nChannels, nRFCU, reuses)
	}
	p := BufferPlan{Choice: choice}
	switch choice {
	case FilterMajor:
		p.InputBufferBytes = t * m * nLambda
		p.OutputBufferBytesPerRFCU = t * nFilters / nRFCU
	case ChannelMajor:
		p.InputBufferBytes = t * nChannels * nLambda
		p.OutputBufferBytesPerRFCU = t * (reuses + 1)
	default:
		return BufferPlan{}, choice.Validate()
	}
	if p.OutputBufferBytesPerRFCU <= 0 {
		return BufferPlan{}, fmt.Errorf("memory: %v plan yields empty output buffer (N_F=%d < N_RFCU=%d)", choice, nFilters, nRFCU)
	}
	return p, nil
}

// InputBuffer returns the SRAM model for the plan's shared input buffer.
// Ping-pong double buffering (so fills overlap drains) doubles the raw
// capacity, as the paper notes it ignores only for exposition.
func (p BufferPlan) InputBuffer(pingPong bool) SRAM {
	c := p.InputBufferBytes
	if pingPong {
		c *= 2
	}
	return MustSRAM("input buffer", c, 1)
}

// OutputBuffer returns the SRAM model for one RFCU's output buffer.
func (p BufferPlan) OutputBuffer(pingPong bool) SRAM {
	c := p.OutputBufferBytesPerRFCU
	if pingPong {
		c *= 2
	}
	return MustSRAM("output buffer", c, 1)
}
