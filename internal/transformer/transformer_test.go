package transformer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"refocus/internal/dataflow"
	"refocus/internal/dsp"
	"refocus/internal/jtc"
	"refocus/internal/optics"
)

func randBlock(rng *rand.Rand, l, d int) [][]float64 {
	x := make([][]float64, l)
	for t := range x {
		x[t] = make([]float64, d)
		for j := range x[t] {
			x[t][j] = rng.NormFloat64()
		}
	}
	return x
}

func maxDiff(a, b [][]float64) float64 {
	var m float64
	for t := range a {
		for j := range a[t] {
			if d := math.Abs(a[t][j] - b[t][j]); d > m {
				m = d
			}
		}
	}
	return m
}

// TestFNetMixMatchesDefinition: the mixer equals the published definition
// Re(FFT_seq(FFT_hidden(x))) computed from first principles.
func TestFNetMixMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, d := 16, 8
	x := randBlock(rng, l, d)
	got := FNetMix(x)

	// Brute-force 2-D DFT, real part.
	want := make([][]float64, l)
	for t2 := range want {
		want[t2] = make([]float64, d)
	}
	for u := 0; u < l; u++ {
		for v := 0; v < d; v++ {
			var sum complex128
			for a := 0; a < l; a++ {
				for b := 0; b < d; b++ {
					ang := -2 * math.Pi * (float64(u*a)/float64(l) + float64(v*b)/float64(d))
					sum += complex(x[a][b], 0) * complex(math.Cos(ang), math.Sin(ang))
				}
			}
			want[u][v] = real(sum)
		}
	}
	if dd := maxDiff(got, want); dd > 1e-8 {
		t.Errorf("FNetMix differs from the 2-D DFT definition by %g", dd)
	}
}

// TestFNetMixOpticalMatchesDigital: the lens-computed sequence transform
// reproduces the digital mixer exactly — the §7.4 point that FNet's mixing
// is the JTC lens's native operation.
func TestFNetMixOpticalMatchesDigital(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ l, d int }{{8, 4}, {64, 16}, {128, 32}} {
		x := randBlock(rng, tc.l, tc.d)
		digital := FNetMix(x)
		optical := FNetMixOptical(x, optics.Lens{Aperture: tc.l})
		if dd := maxDiff(digital, optical); dd > 1e-8 {
			t.Errorf("l=%d d=%d: optical mixing differs by %g", tc.l, tc.d, dd)
		}
	}
}

// TestFNetMixIdempotentStructure: mixing twice relates to the identity up
// to parity and scale for a real input — a sanity property of the double
// Fourier transform (not asserted exactly; we check linearity instead).
func TestFNetMixLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randBlock(rng, 8, 4)
		y := randBlock(rng, 8, 4)
		sum := make([][]float64, 8)
		for t2 := range sum {
			sum[t2] = make([]float64, 4)
			for j := range sum[t2] {
				sum[t2][j] = 2*x[t2][j] - 3*y[t2][j]
			}
		}
		mx, my, ms := FNetMix(x), FNetMix(y), FNetMix(sum)
		for t2 := range ms {
			for j := range ms[t2] {
				if math.Abs(ms[t2][j]-(2*mx[t2][j]-3*my[t2][j])) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSequenceConvMatchesReference: the depthwise sequence convolution
// equals per-channel dsp correlation, and works through real light.
func TestSequenceConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, d, k := 24, 6, 5
	x := make([][]float64, l)
	for t2 := range x {
		x[t2] = make([]float64, d)
		for j := range x[t2] {
			x[t2][j] = rng.Float64() // non-negative for the optical path
		}
	}
	kernels := make([][]float64, d)
	for j := range kernels {
		kernels[j] = make([]float64, k)
		for i := range kernels[j] {
			kernels[j][i] = rng.Float64()
		}
	}
	digital := SequenceConv(x, kernels, jtc.DigitalCorrelator)
	for j := 0; j < d; j++ {
		col := make([]float64, l)
		for t2 := 0; t2 < l; t2++ {
			col[t2] = x[t2][j]
		}
		want := dsp.CorrValid(col, kernels[j])
		for t2 := range want {
			if math.Abs(digital[t2][j]-want[t2]) > 1e-12 {
				t.Fatalf("channel %d position %d: %g vs %g", j, t2, digital[t2][j], want[t2])
			}
		}
	}
	phys := jtc.NewPhysicalJTC(512)
	optical := SequenceConv(x, kernels, phys.Correlate)
	if dd := maxDiff(digital, optical); dd > 1e-8 {
		t.Errorf("light-computed sequence conv differs by %g", dd)
	}
}

// TestMixingEventsScaling: cost scales linearly in tokens×hidden for the
// conversions and sublinearly in cycles thanks to RFCU/WDM parallelism.
func TestMixingEventsScaling(t *testing.T) {
	cfg := dataflow.Config{NRFCU: 16, T: 256, WeightWaveguides: 25, NLambda: 2, M: 16}
	small := MixingEvents(128, 256, cfg)
	big := MixingEvents(128, 512, cfg)
	if r := big.InputDACWrites / small.InputDACWrites; r != 2 {
		t.Errorf("conversions should double with hidden size, got %g", r)
	}
	if big.Cycles < small.Cycles {
		t.Error("cycles should not shrink with more work")
	}
	if small.WeightDACWrites != 0 {
		t.Error("Fourier mixing has no weights — the lens is passive")
	}
	// One RFCU-group pass per 32 columns: 256 hidden / 32 = 8 cycles for a
	// 128-token (single-tile) block.
	if small.Cycles != 8 {
		t.Errorf("128×256 mixing cycles = %g, want 8", small.Cycles)
	}
}

func TestValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { FNetMix([][]float64{}) },
		func() { FNetMix([][]float64{{1, 2}, {1}}) },
		func() { FNetMixOptical(randBlock(rand.New(rand.NewSource(4)), 16, 2), optics.Lens{Aperture: 8}) },
		func() {
			SequenceConv(randBlock(rand.New(rand.NewSource(5)), 4, 2), [][]float64{{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}}, jtc.DigitalCorrelator)
		},
		func() { MixingEvents(0, 8, dataflow.Config{NRFCU: 1, T: 256, WeightWaveguides: 25, NLambda: 1, M: 1}) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Errorf("case %d: expected panic", i)
		}()
	}
}

func BenchmarkFNetMixOptical(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randBlock(rng, 128, 64)
	lens := optics.Lens{Aperture: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FNetMixOptical(x, lens)
	}
}
