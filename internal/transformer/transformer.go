// Package transformer implements the §7.4 outlook: the non-CNN workloads a
// JTC-based accelerator can serve. Fourier-transform token mixers (FNet
// [30], AFNO [21]) replace self-attention with exactly the operation an
// on-chip lens computes for free, and convolution-based transformers (CvT
// [64], [68]) lean on the 1-D convolutions the JTC natively provides.
//
// The package provides digital references, the optical implementations on
// the optics/jtc substrates (validated to match), and an event-count cost
// model so the arch package's methodology extends to these layers.
package transformer

import (
	"fmt"
	"math"

	"refocus/internal/dataflow"
	"refocus/internal/dsp"
	"refocus/internal/jtc"
	"refocus/internal/nn"
	"refocus/internal/optics"
)

// FNetMix applies the FNet token-mixing sublayer to a [seq][hidden] block:
// y = Re( FFT_seq( FFT_hidden(x) ) ). It replaces self-attention with two
// unparameterized Fourier transforms (Lee-Thorp et al. [30]). Each
// dimension's transforms are staged and executed as one dsp.Batch, so the
// plan tables stay hot across all rows instead of being re-fetched per
// token and per channel.
func FNetMix(x [][]float64) [][]float64 {
	l, d := dims(x)
	// Hidden-dimension transform: one batch of l token rows.
	rows := dsp.NewBatch(d, false)
	for t := 0; t < l; t++ {
		row := rows.Next()
		for j, v := range x[t] {
			row[j] = complex(v, 0)
		}
	}
	rows.Execute()
	// Sequence-dimension transform: one batch of d channel columns, then
	// the real part.
	cols := dsp.NewBatch(l, false)
	for j := 0; j < d; j++ {
		col := cols.Next()
		for t := 0; t < l; t++ {
			col[t] = rows.Row(t)[j]
		}
	}
	cols.Execute()
	out := make([][]float64, l)
	for t := range out {
		out[t] = make([]float64, d)
		for j := 0; j < d; j++ {
			out[t][j] = real(cols.Row(j)[t])
		}
	}
	return out
}

// FNetMixOptical computes the same mixing with the sequence-dimension
// transform performed by an on-chip lens: each hidden channel's token
// column is loaded onto the waveguides and the lens emits its Fourier
// transform in one pass — the passive, instantaneous operation that makes
// FNet-style models natural JTC targets. The hidden-dimension transform
// stays digital (it is the short one; d ≤ a few hundred).
func FNetMixOptical(x [][]float64, lens optics.Lens) [][]float64 {
	l, d := dims(x)
	if lens.Aperture < l {
		panic(fmt.Sprintf("transformer: %d tokens exceed the lens aperture %d", l, lens.Aperture))
	}
	// The digital hidden-dimension half runs as one batched transform;
	// only the sequence dimension goes through the lens.
	rows := dsp.NewBatch(d, false)
	for t := 0; t < l; t++ {
		row := rows.Next()
		for j, v := range x[t] {
			row[j] = complex(v, 0)
		}
	}
	rows.Execute()
	out := make([][]float64, l)
	for t := range out {
		out[t] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		field := optics.NewField(l)
		for t := 0; t < l; t++ {
			field[t] = rows.Row(t)[j]
		}
		transformed := lens.Transform(field)
		// The lens's unitary 1/√L scaling is undone digitally, like every
		// other fixed optical gain in the system.
		scale := math.Sqrt(float64(l))
		for t := 0; t < l; t++ {
			out[t][j] = real(transformed[t]) * scale
		}
	}
	return out
}

// SequenceConv applies a depthwise 1-D convolution over the sequence
// dimension of a [seq][hidden] block — the token-mixing primitive of
// convolutional transformers — using the supplied correlator (digital or a
// physical JTC). kernel[j] convolves hidden channel j; all kernels share a
// length. Output length is seq-len(kernel)+1 per channel (valid mode).
func SequenceConv(x [][]float64, kernel [][]float64, corr jtc.Correlator) [][]float64 {
	l, d := dims(x)
	if len(kernel) != d {
		panic(fmt.Sprintf("transformer: %d kernels for %d hidden channels", len(kernel), d))
	}
	k := len(kernel[0])
	outL := l - k + 1
	if outL < 1 {
		panic("transformer: kernel longer than the sequence")
	}
	out := make([][]float64, outL)
	for t := range out {
		out[t] = make([]float64, d)
	}
	col := make([]float64, l)
	for j := 0; j < d; j++ {
		if len(kernel[j]) != k {
			panic("transformer: ragged kernel lengths")
		}
		for t := 0; t < l; t++ {
			col[t] = x[t][j]
		}
		res := corr(col, kernel[j])
		for t := 0; t < outL; t++ {
			out[t][j] = res[t]
		}
	}
	return out
}

// MixingEvents estimates the JTC activity of one FNet mixing sublayer on
// the ReFOCUS execution model, delegating to the dataflow package's
// fourier-mixing layer kind (dataflow.MixingEvents). Panics on
// non-positive dimensions, matching the package's functional API.
func MixingEvents(seqLen, hidden int, cfg dataflow.Config) dataflow.Events {
	if seqLen < 1 || hidden < 1 {
		panic("transformer: non-positive dimensions")
	}
	e, err := dataflow.MixingEvents(nn.MixingLayer{Name: "mixing", SeqLen: seqLen, Hidden: hidden, Repeat: 1}, cfg)
	if err != nil {
		panic("transformer: " + err.Error())
	}
	return e
}

func dims(x [][]float64) (l, d int) {
	l = len(x)
	if l == 0 {
		panic("transformer: empty sequence")
	}
	d = len(x[0])
	for i, row := range x {
		if len(row) != d {
			panic(fmt.Sprintf("transformer: ragged row %d", i))
		}
	}
	return l, d
}
