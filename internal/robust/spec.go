// Package robust runs device-in-the-loop robustness campaigns: seeded
// Monte Carlo fleets of manufactured ReFOCUS chips, each trial sampling
// fabrication faults (internal/faults), degrading the design point,
// measuring the degraded machine's throughput with the same bottom-up
// evaluator the healthy numbers come from, and evaluating — optionally
// retraining — the §7.2 reference network through that device's noise
// model (internal/noise). The output is the accuracy-vs-yield-vs-
// throughput frontier per fault-severity level: the answer to "does a
// *manufactured* ReFOCUS keep working", which no single-trial evaluation
// can give.
//
// Campaigns are long-running jobs with a full lifecycle: durable JSON
// checkpoints written atomically after every trial (resumable after
// SIGKILL with completed trials skipped), per-trial seeds derived purely
// from (campaign seed, severity index, trial index) so results are
// byte-identical regardless of execution order, worker count or how many
// times the campaign was interrupted, incumbent streaming as frontier
// points refresh, and context cancellation threaded through every trial.
// The serving layer (internal/serve, internal/cluster) exposes this as
// POST /v1/robustness.
package robust

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"refocus/internal/arch"
	"refocus/internal/faults"
	"refocus/internal/nn"
	"refocus/internal/sim"
)

// DeviceModel parameterizes the per-trial analog datapath the reference
// network is evaluated through, at severity 1. Every field scales
// linearly with a trial's severity multiplier, so severity 0 is a clean
// digital datapath and severity 2 a device twice as far out of spec.
type DeviceModel struct {
	// FixedPatternSigma is the per-detector gain mismatch σ of the
	// device's fixed calibration pattern (noise.FixedPatternCorrelator).
	FixedPatternSigma float64
	// ReadSigma, ShotCoeff and RINSigma are the stochastic detector
	// noise model (optics.NoiseModel): additive read noise, signal-
	// proportional shot noise and relative intensity noise.
	ReadSigma float64
	ShotCoeff float64
	RINSigma  float64
}

// TaskSpec sizes the §7.2 reference task and training loop. The defaults
// are deliberately small — a campaign runs hundreds of trials and each
// retraining trial pays TrainSamples × Epochs forward/backward passes
// through the JTC engine.
type TaskSpec struct {
	// Classes and Size shape the confusable prototype task (Size must be
	// a multiple of 4 for the net's two 2×2 pools).
	Classes int
	Size    int
	// TrainSamples and TestSamples split the dataset.
	TrainSamples int
	TestSamples  int
	// Epochs and LearningRate drive SGD for the clean reference net and
	// for every per-trial retraining pass.
	Epochs       int
	LearningRate float64
}

// Spec describes one robustness campaign: a design point, a workload, a
// fault model with a severity grid, and the trial budget. Identical specs
// (after defaulting) share one campaign ID, so resubmitting a spec after
// a restart attaches to the existing checkpoint instead of starting over.
type Spec struct {
	// Name labels the campaign in reports; it is part of the identity, so
	// two otherwise equal specs with different names are separate
	// campaigns.
	Name string `json:",omitempty"`
	// Preset is a design-point registry name or alias ("fb", ...).
	// Exactly one of Preset or Config must be set.
	Preset string `json:",omitempty"`
	// Config is a design point in the -config-file schema.
	Config json.RawMessage `json:",omitempty"`
	// Network is a registered workload name (case-insensitive) or "all";
	// empty defaults to "ResNet-18". Trial throughput is the geomean FPS
	// across the resolved networks, mirroring the yield sweeps.
	Network string `json:",omitempty"`
	// Model is the Monte Carlo fault model at severity 1. The zero value
	// gets a small default (2% RFCU, 1% wavelength, 0.5 dB loss σ);
	// scaled per severity by ScaledModel.
	Model faults.MonteCarloModel
	// Severities are the fault-model multipliers forming the frontier's
	// x-axis; empty defaults to [0, 0.5, 1]. Probabilities clamp at 1.
	Severities []float64 `json:",omitempty"`
	// Trials is the number of sampled chips per severity level; 0
	// defaults to 16.
	Trials int `json:",omitempty"`
	// Seed is the campaign's root seed: per-trial seeds mix it with the
	// severity and trial indices (TrialSeed), never with wall-clock or
	// execution order.
	Seed int64
	// Retrain additionally retrains the reference net through each
	// trial's device model (straight-through gradients) and reports the
	// recovered accuracy distribution — the §7.2 compensation experiment
	// run across a manufactured fleet.
	Retrain bool `json:",omitempty"`
	// Device is the analog datapath model at severity 1 (zero fields get
	// defaults; see DeviceModel).
	Device DeviceModel
	// Task sizes the reference task (zero fields get defaults).
	Task TaskSpec
}

// Default campaign knobs, applied by WithDefaults.
const (
	// DefaultNetwork is the workload a spec evaluates when none is named.
	DefaultNetwork = "ResNet-18"
	// DefaultTrials is the per-severity chip count when Trials is 0.
	DefaultTrials = 16
)

// maxima bounding user-submitted campaign specs: a campaign is heavy
// compute, so the serving tier refuses budgets past these instead of
// grinding for hours.
const (
	maxTrials     = 10000
	maxSeverities = 64
)

// WithDefaults returns the spec with every unset field filled in. Start
// and ID always operate on the defaulted form, so a spec naming only a
// preset and a seed is a complete campaign description.
func (s Spec) WithDefaults() Spec {
	if s.Network == "" {
		s.Network = DefaultNetwork
	}
	var zeroModel faults.MonteCarloModel
	if s.Model == zeroModel {
		s.Model = faults.MonteCarloModel{RFCUFailProb: 0.02, WavelengthFailProb: 0.01, BufferLossSigmaDB: 0.5}
	}
	if len(s.Severities) == 0 {
		s.Severities = []float64{0, 0.5, 1}
	}
	if s.Trials == 0 {
		s.Trials = DefaultTrials
	}
	if s.Device == (DeviceModel{}) {
		s.Device = DeviceModel{FixedPatternSigma: 0.3, ReadSigma: 0.05, RINSigma: 0.05}
	}
	t := &s.Task
	if t.Classes == 0 {
		t.Classes = 4
	}
	if t.Size == 0 {
		t.Size = 8
	}
	if t.TrainSamples == 0 {
		t.TrainSamples = 64
	}
	if t.TestSamples == 0 {
		t.TestSamples = 32
	}
	if t.Epochs == 0 {
		t.Epochs = 10
	}
	if t.LearningRate == 0 {
		t.LearningRate = 0.05
	}
	return s
}

// Validate reports specs that cannot run. It resolves the design point
// and workload eagerly, so a bad preset or network name fails at submit
// time, not trials deep into the campaign. Call on the defaulted form.
func (s Spec) Validate() error {
	if _, err := s.ResolveConfig(); err != nil {
		return err
	}
	if _, err := s.ResolveNetworks(); err != nil {
		return err
	}
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if s.Trials < 1 || s.Trials > maxTrials {
		return fmt.Errorf("robust: Trials %d outside [1,%d]", s.Trials, maxTrials)
	}
	if len(s.Severities) > maxSeverities {
		return fmt.Errorf("robust: %d severity levels, max %d", len(s.Severities), maxSeverities)
	}
	for i, sev := range s.Severities {
		if math.IsNaN(sev) || math.IsInf(sev, 0) || sev < 0 {
			return fmt.Errorf("robust: severity[%d] = %g, must be finite and >= 0", i, sev)
		}
	}
	d := s.Device
	if d.FixedPatternSigma < 0 || d.ReadSigma < 0 || d.ShotCoeff < 0 || d.RINSigma < 0 {
		return errors.New("robust: Device noise parameters must be >= 0")
	}
	t := s.Task
	if t.Classes < 2 {
		return fmt.Errorf("robust: Task.Classes %d, need at least 2", t.Classes)
	}
	if t.Size < 4 || t.Size%4 != 0 {
		return fmt.Errorf("robust: Task.Size %d, must be a positive multiple of 4", t.Size)
	}
	if t.TrainSamples < 1 || t.TestSamples < 1 {
		return errors.New("robust: Task needs at least 1 train and 1 test sample")
	}
	if t.TrainSamples > 4096 || t.TestSamples > 4096 || t.Size > 64 || t.Classes > 64 {
		return errors.New("robust: Task larger than the campaign budget allows (samples/classes <= 4096/64, size <= 64)")
	}
	if t.Epochs < 1 || t.Epochs > 256 {
		return fmt.Errorf("robust: Task.Epochs %d outside [1,256]", t.Epochs)
	}
	if t.LearningRate <= 0 || math.IsNaN(t.LearningRate) || math.IsInf(t.LearningRate, 0) {
		return fmt.Errorf("robust: Task.LearningRate %g, must be finite and > 0", t.LearningRate)
	}
	return nil
}

// ResolveConfig turns the spec's design-point naming into a validated
// arch.SystemConfig — the same preset-or-config contract the serving
// layer speaks, minus per-request overrides.
func (s Spec) ResolveConfig() (arch.SystemConfig, error) {
	var cfg arch.SystemConfig
	var err error
	switch {
	case s.Preset != "" && len(s.Config) > 0:
		return cfg, errors.New("robust: spec names both Preset and Config; pick one")
	case s.Preset != "":
		cfg, err = arch.PresetByName(s.Preset)
	case len(s.Config) > 0:
		cfg, err = sim.LoadConfig(s.Config)
	default:
		return cfg, errors.New("robust: spec must name a Preset or carry a Config design point")
	}
	if err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

// ResolveNetworks resolves the spec's workload name to the network set
// trial throughput is measured on.
func (s Spec) ResolveNetworks() ([]nn.Network, error) {
	name := s.Network
	if name == "" {
		name = DefaultNetwork
	}
	return sim.ResolveNetworks(name)
}

// ScaledModel returns the fault model at one severity multiplier:
// per-unit failure probabilities scale linearly and clamp at 1, the loss
// σ scales linearly. Severity 0 is a perfect fab.
func (s Spec) ScaledModel(severity float64) faults.MonteCarloModel {
	clamp := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		return p
	}
	return faults.MonteCarloModel{
		RFCUFailProb:       clamp(s.Model.RFCUFailProb * severity),
		WavelengthFailProb: clamp(s.Model.WavelengthFailProb * severity),
		BufferLossSigmaDB:  s.Model.BufferLossSigmaDB * severity,
	}
}

// campaignIdentity is the hashed form of a spec: design point and
// workload are replaced by their canonical content hashes, so two specs
// that spell the same design point differently (preset alias vs inline
// config, formatting differences) still share one campaign — and one
// checkpoint.
type campaignIdentity struct {
	Name          string
	ConfigHash    string
	NetworkHashes []string
	Model         faults.MonteCarloModel
	Severities    []float64
	Trials        int
	Seed          int64
	Retrain       bool
	Device        DeviceModel
	Task          TaskSpec
}

// ID returns the campaign's stable identity: the SHA-256 hex digest of
// the defaulted spec's canonical form. It names the checkpoint file and
// the GET /v1/robustness/{id} handle, and doubles as the route-key
// prefix sharding trials across a cluster. Call on the defaulted form.
func (s Spec) ID() (string, error) {
	cfg, err := s.ResolveConfig()
	if err != nil {
		return "", err
	}
	cfgHash, err := arch.ConfigHash(cfg)
	if err != nil {
		return "", err
	}
	nets, err := s.ResolveNetworks()
	if err != nil {
		return "", err
	}
	idt := campaignIdentity{
		Name:       s.Name,
		ConfigHash: cfgHash,
		Model:      s.Model,
		Severities: s.Severities,
		Trials:     s.Trials,
		Seed:       s.Seed,
		Retrain:    s.Retrain,
		Device:     s.Device,
		Task:       s.Task,
	}
	for _, net := range nets {
		h, err := nn.NetworkHash(net)
		if err != nil {
			return "", err
		}
		idt.NetworkHashes = append(idt.NetworkHashes, h)
	}
	data, err := json.Marshal(idt)
	if err != nil {
		return "", fmt.Errorf("robust: encoding campaign identity: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// TrialSeed derives the deterministic seed of one (severity, trial) cell
// from the campaign seed with a splitmix-style mix. Seeds depend only on
// the indices — never on execution order, worker count or resume
// history — which is what makes a killed-and-restarted campaign's
// frontier byte-identical to an uninterrupted run's.
func TrialSeed(seed int64, severity, trial int) int64 {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	h ^= uint64(severity+1) * 0xBF58476D1CE4E5B9
	h ^= uint64(trial+1) * 0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return int64(h)
}
