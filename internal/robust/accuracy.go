package robust

import (
	"math/rand"

	"refocus/internal/nn"
	"refocus/internal/noise"
	"refocus/internal/optics"
)

// Reference-net shape and task hardness, fixed across campaigns so
// accuracy numbers are comparable between specs: the conv channel widths
// of the §7.2 net and the confusable-task margins from
// noise.TrainingCompensation.
const (
	harnessF1            = 4
	harnessF2            = 8
	confusableDelta      = 0.6
	confusablePixelNoise = 0.15
)

// harness owns the campaign's accuracy side: the reference task, the
// clean-trained reference net, and per-trial device evaluation. Building
// one trains the clean net once; per-trial calls clone it, so the
// harness is safe for concurrent trials.
type harness struct {
	spec  Spec
	train []nn.TrainSample
	test  []nn.TrainSample
	clean *nn.TrainableNet
	// cleanAccuracy is the clean net's accuracy on the clean digital
	// datapath — the campaign's accuracy ceiling.
	cleanAccuracy float64
}

// newHarness builds the task and trains the clean reference net, all
// seeded from the campaign seed (roles split with fixed offsets, the
// noise-package seeding idiom).
func newHarness(spec Spec) *harness {
	t := spec.Task
	rng := rand.New(rand.NewSource(spec.Seed))
	train, test := noise.ConfusableTask(rng, t.Classes, t.Size, t.TrainSamples, t.TestSamples, confusableDelta, confusablePixelNoise)
	clean := nn.NewTrainableNet(rand.New(rand.NewSource(spec.Seed+1)), 1, harnessF1, harnessF2, t.Classes)
	clean.Train(train, nn.ReferenceConv, t.LearningRate, t.Epochs, rand.New(rand.NewSource(spec.Seed+2)))
	return &harness{
		spec:          spec,
		train:         train,
		test:          test,
		clean:         clean,
		cleanAccuracy: clean.Accuracy(test, nn.ReferenceConv),
	}
}

// conv builds the trial device's forward path: the severity-scaled fixed
// calibration pattern keyed by the trial seed plus severity-scaled
// stochastic detector noise. The same (seed, severity) always yields the
// same device.
func (h *harness) conv(seed int64, severity float64) nn.ConvFunc {
	d := h.spec.Device
	model := optics.NoiseModel{
		ReadSigma: d.ReadSigma * severity,
		ShotCoeff: d.ShotCoeff * severity,
		RINSigma:  d.RINSigma * severity,
	}
	return noise.DeviceConv(d.FixedPatternSigma*severity, seed, model, rand.New(rand.NewSource(seed+1)))
}

// accuracy evaluates the clean-trained reference net on this trial's
// device — what a conventionally trained model loses on the degraded
// analog datapath. The shared net is cloned per call (Forward mutates
// caches), keeping concurrent trials race-free.
func (h *harness) accuracy(seed int64, severity float64) float64 {
	return h.clean.Clone().Accuracy(h.test, h.conv(seed, severity))
}

// retrain trains a fresh net through this trial's device model
// (straight-through gradients, the §7.2 compensation path) and evaluates
// it on an independent noise draw of the same device.
func (h *harness) retrain(seed int64, severity float64) float64 {
	t := h.spec.Task
	net := nn.NewTrainableNet(rand.New(rand.NewSource(h.spec.Seed+1)), 1, harnessF1, harnessF2, t.Classes)
	net.Train(h.train, h.conv(seed, severity), t.LearningRate, t.Epochs, rand.New(rand.NewSource(seed+2)))
	return net.Accuracy(h.test, h.conv(seed+3, severity))
}
