package robust

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// checkpointVersion guards the on-disk schema; a loader refuses a file
// written by an incompatible future format instead of misreading it.
const checkpointVersion = 1

// tmpSeq distinguishes concurrent temp files within one process (the
// DiskStore idiom: pid + sequence, then an atomic rename).
var tmpSeq atomic.Int64

// TrialResult is one completed Monte Carlo trial — the checkpoint's unit
// of durability and the frontier's raw material. Every field derives
// deterministically from (Spec, Severity, Trial), so a resumed campaign
// reproduces missing trials bit-for-bit.
type TrialResult struct {
	// Severity indexes Spec.Severities; Trial indexes [0, Spec.Trials).
	Severity int
	Trial    int
	// Seed is TrialSeed(spec.Seed, Severity, Trial), recorded so a trial
	// can be replayed standalone.
	Seed int64
	// Failed marks a hard chip failure (faults.ErrNothingRuns): no
	// compute path survives, so the trial counts against yield and is
	// excluded from the throughput and accuracy distributions.
	Failed bool `json:",omitempty"`
	// FPS and Energy are the degraded machine's geomean throughput and
	// energy per inference across the spec's networks (zero when Failed).
	FPS    float64 `json:",omitempty"`
	Energy float64 `json:",omitempty"`
	// HealthyRFCUs, EffectiveLambda and EffectiveReuses summarize the
	// fault remapping (the Degradation record's load-bearing fields).
	HealthyRFCUs    int `json:",omitempty"`
	EffectiveLambda int `json:",omitempty"`
	EffectiveReuses int `json:",omitempty"`
	// Accuracy is the clean-trained reference net's accuracy on this
	// trial's device datapath (zero when Failed).
	Accuracy float64 `json:",omitempty"`
	// RetrainedAccuracy is the accuracy after retraining through the
	// device model; present only on Retrain campaigns.
	RetrainedAccuracy *float64 `json:",omitempty"`
}

// Checkpoint is the durable campaign state: the defaulted spec, every
// completed trial, and — once the campaign finishes — the final
// frontier. It is written atomically (temp file + rename) after every
// completed trial, so a SIGKILL at any instant leaves either the
// previous checkpoint or the next one, never a torn file.
type Checkpoint struct {
	// Version is the schema version (checkpointVersion).
	Version int
	// ID is the campaign identity the file belongs to; a loader rejects
	// a mismatch rather than resuming someone else's trials.
	ID string
	// Spec is the defaulted campaign spec.
	Spec Spec
	// Done lists completed trials sorted by (Severity, Trial).
	Done []TrialResult
	// NominalFPS and CleanAccuracy are the campaign-level baselines,
	// present once the campaign finished.
	NominalFPS    float64 `json:",omitempty"`
	CleanAccuracy float64 `json:",omitempty"`
	// Frontier is the final per-severity frontier; non-nil only when the
	// campaign ran to completion (its presence is how a status probe
	// tells "done" from "interrupted").
	Frontier []FrontierPoint `json:",omitempty"`
}

// CheckpointPath names a campaign's checkpoint file inside dir.
func CheckpointPath(dir, id string) string {
	return filepath.Join(dir, "campaign-"+id+".json")
}

// LoadCheckpoint reads and validates a checkpoint file. A missing file
// returns an error satisfying errors.Is(err, os.ErrNotExist) — the
// normal first-run case callers test for.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("robust: parsing checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("robust: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.ID == "" {
		return nil, fmt.Errorf("robust: checkpoint %s carries no campaign ID", path)
	}
	return &cp, nil
}

// writeCheckpoint persists cp atomically into its path: marshal, write a
// uniquely named temp file in the same directory, rename over the
// destination. Readers never observe a partial file, and a crash leaves
// at most a stale temp file behind.
func writeCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return fmt.Errorf("robust: encoding checkpoint: %w", err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("robust: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("robust: committing checkpoint: %w", err)
	}
	return nil
}

// sortResults orders trials by (Severity, Trial) — the canonical
// checkpoint and frontier order, independent of completion order.
func sortResults(ts []TrialResult) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Severity != ts[j].Severity {
			return ts[i].Severity < ts[j].Severity
		}
		return ts[i].Trial < ts[j].Trial
	})
}

// errWrongCampaign reports a checkpoint/campaign identity mismatch.
var errWrongCampaign = errors.New("robust: checkpoint belongs to a different campaign")
