package robust

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"refocus/internal/arch"
	"refocus/internal/faults"
)

// TrialMetrics is the throughput side of one surviving trial: geomean
// FPS and energy per inference across the spec's networks, produced by
// whatever TrialEval backs the campaign.
type TrialMetrics struct {
	// FPS is the degraded machine's geomean frames/s; Energy its geomean
	// energy per inference.
	FPS    float64
	Energy float64
}

// TrialEval evaluates the degraded design point of one trial. The serve
// tier implements it on top of its cached, admission-controlled worker
// pool; the cluster tier dispatches it across shards by routeKey (the
// campaign ID + trial seed, so a fixed trial always lands on the same
// shard and rides the ring's dead-shard failover); DirectEval evaluates
// in-process. A zero fault set asks for the nominal (healthy) machine.
type TrialEval func(ctx context.Context, spec Spec, fs faults.FaultSet, routeKey string) (TrialMetrics, error)

// metricEnergy extracts energy per inference for geomean aggregation.
var metricEnergy arch.Metric = func(r arch.Report) float64 { return r.Energy }

// DirectEval returns a TrialEval that evaluates in-process with no
// cache or admission control — unit tests, offline tools and any caller
// that does not sit behind the serving tier.
func DirectEval() TrialEval {
	return func(ctx context.Context, spec Spec, fs faults.FaultSet, _ string) (TrialMetrics, error) {
		cfg, err := spec.ResolveConfig()
		if err != nil {
			return TrialMetrics{}, err
		}
		nets, err := spec.ResolveNetworks()
		if err != nil {
			return TrialMetrics{}, err
		}
		var reports []arch.Report
		if fs.IsZero() {
			reports, err = arch.EvaluateAllCtx(ctx, cfg, nets)
		} else {
			var degraded []faults.Report
			degraded, err = faults.EvaluateAllCtx(ctx, cfg, fs, nets)
			if err == nil {
				reports = make([]arch.Report, len(degraded))
				for i, d := range degraded {
					reports[i] = d.Report
				}
			}
		}
		if err != nil {
			return TrialMetrics{}, err
		}
		return TrialMetrics{
			FPS:    arch.GeoMean(reports, arch.MetricFPS),
			Energy: arch.GeoMean(reports, metricEnergy),
		}, nil
	}
}

// FrontierPoint is one severity level of the accuracy/yield/throughput
// frontier: how a fleet of chips manufactured at that fault severity
// performs. While a campaign runs, incumbent points cover the trials
// completed so far; the final frontier covers all of them.
type FrontierPoint struct {
	// Severity is the fault-model multiplier; SeverityIndex its position
	// in the spec's grid.
	Severity      float64
	SeverityIndex int
	// Trials counts completed trials at this severity so far; Failed the
	// hard chip failures among them (no compute path). Yield is the
	// surviving fraction.
	Trials int
	Failed int
	Yield  float64
	// FPS and Accuracy summarize the survivors (zero-valued when none
	// survive — a dead fleet has no throughput, not zero throughput).
	FPS      faults.Distribution
	Accuracy faults.Distribution
	// Retrained is the post-retraining accuracy distribution, present on
	// Retrain campaigns with at least one survivor.
	Retrained *faults.Distribution `json:",omitempty"`
	// FleetFPS is yield-weighted mean throughput — the frontier's
	// throughput axis: what a wafer of these chips delivers per die sold.
	FleetFPS float64
}

// Update is one line of a campaign's NDJSON incumbent stream.
type Update struct {
	// Type is "trial" while the campaign runs, then a final "done" or
	// "failed" line.
	Type string
	// Completed counts finished trials (resumed included) out of Total.
	Completed int
	Total     int
	// Incumbent is the refreshed frontier point for the severity the
	// just-finished trial belongs to (absent on the resume-progress and
	// final lines).
	Incumbent *FrontierPoint `json:",omitempty"`
	// Status carries the full final state on the last line.
	Status *StatusResponse `json:",omitempty"`
}

// Hooks observes campaign events, letting the serving tier count
// metrics without this package importing it. All fields are optional.
// Runner fires only the trial-level hooks; Manager fires the campaign-
// level pair.
type Hooks struct {
	// CampaignStarted fires when a campaign job begins running;
	// CampaignDone when it finishes (err nil on success).
	CampaignStarted func()
	CampaignDone    func(err error)
	// TrialExecuted fires for every trial computed in this process;
	// TrialResumed for every trial skipped because a checkpoint already
	// held its result.
	TrialExecuted func(TrialResult)
	TrialResumed  func(TrialResult)
}

// Result is a completed campaign.
type Result struct {
	// ID is the campaign identity; Spec the defaulted spec it ran.
	ID   string
	Spec Spec
	// NominalFPS is the healthy design point's geomean throughput;
	// CleanAccuracy the reference net's accuracy on the clean digital
	// datapath — the two baselines the frontier degrades from.
	NominalFPS    float64
	CleanAccuracy float64
	// Frontier is the final per-severity frontier, in severity order.
	Frontier []FrontierPoint
	// Executed counts trials computed in this process, Resumed the ones
	// recovered from the checkpoint, FailedChips the hard failures among
	// all of them. Executed+Resumed always equals the trial budget — a
	// resumed campaign never recomputes (duplicates) a checkpointed
	// trial.
	Executed    int
	Resumed     int
	FailedChips int
}

// Runner executes one campaign: Monte Carlo trials over the severity
// grid with bounded parallelism, checkpointing after every trial, and
// per-trial seeds independent of execution order. Fields are read-only
// once Run starts.
type Runner struct {
	// Spec is the defaulted, validated campaign spec; ID its identity.
	Spec Spec
	ID   string
	// Dir is the checkpoint directory; "" disables durability.
	Dir string
	// Eval evaluates each trial's degraded throughput (required).
	Eval TrialEval
	// Parallelism bounds concurrent trials; <1 defaults to 2.
	Parallelism int
	// Hooks observes trial completion/resume events.
	Hooks Hooks
	// OnUpdate receives incumbent updates as trials finish (may be nil).
	// Called without internal locks held, possibly concurrently.
	OnUpdate func(Update)
}

// trialKey addresses one (severity, trial) cell.
type trialKey struct {
	sev, trial int
}

// update emits u when a sink is attached.
func (r *Runner) update(u Update) {
	if r.OnUpdate != nil {
		r.OnUpdate(u)
	}
}

// Run executes the campaign until done, canceled, or the first hard
// error. It loads any existing checkpoint first and computes only the
// missing trials; the returned frontier is byte-for-byte the one an
// uninterrupted run with the same spec produces.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	if r.Eval == nil {
		return nil, errors.New("robust: Runner.Eval is required")
	}
	spec := r.Spec
	cfg, err := spec.ResolveConfig()
	if err != nil {
		return nil, err
	}
	total := len(spec.Severities) * spec.Trials

	done := make(map[trialKey]TrialResult, total)
	path := ""
	if r.Dir != "" {
		if err := os.MkdirAll(r.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("robust: checkpoint dir: %w", err)
		}
		path = CheckpointPath(r.Dir, r.ID)
		cp, err := LoadCheckpoint(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume.
		case err != nil:
			return nil, err
		case cp.ID != r.ID:
			return nil, fmt.Errorf("%w: file %s holds %s, want %s", errWrongCampaign, path, cp.ID, r.ID)
		default:
			for _, t := range cp.Done {
				if t.Severity >= 0 && t.Severity < len(spec.Severities) && t.Trial >= 0 && t.Trial < spec.Trials {
					done[trialKey{t.Severity, t.Trial}] = t
				}
			}
		}
	}
	resumed := len(done)
	if h := r.Hooks.TrialResumed; h != nil {
		for _, t := range done {
			h(t)
		}
	}

	// Baselines: the clean reference net (trains once per campaign) and
	// the healthy design point's throughput.
	har := newHarness(spec)
	nominal, err := r.Eval(ctx, spec, faults.FaultSet{}, r.ID+"|nominal")
	if err != nil {
		return nil, fmt.Errorf("robust: nominal evaluation: %w", err)
	}
	if resumed > 0 {
		r.update(Update{Type: "trial", Completed: resumed, Total: total})
	}

	var pending []trialKey
	for s := range spec.Severities {
		for t := 0; t < spec.Trials; t++ {
			if _, ok := done[trialKey{s, t}]; !ok {
				pending = append(pending, trialKey{s, t})
			}
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	workers := r.Parallelism
	if workers < 1 {
		workers = 2
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	next := make(chan trialKey)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				t, err := r.runTrial(cctx, cfg, har, k.sev, k.trial)
				var u Update
				mu.Lock()
				if err != nil {
					fail(err)
					mu.Unlock()
					continue
				}
				done[k] = t
				point := partialPoint(spec, done, k.sev)
				u = Update{Type: "trial", Completed: len(done), Total: total, Incumbent: &point}
				if path != "" {
					if werr := writeCheckpoint(path, r.checkpoint(done, nil, 0, 0)); werr != nil {
						fail(werr)
					}
				}
				mu.Unlock()
				if h := r.Hooks.TrialExecuted; h != nil {
					h(t)
				}
				r.update(u)
			}
		}()
	}
feed:
	for _, k := range pending {
		select {
		case next <- k:
		case <-cctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{
		ID:            r.ID,
		Spec:          spec,
		NominalFPS:    nominal.FPS,
		CleanAccuracy: har.cleanAccuracy,
		Frontier:      computeFrontier(spec, done),
		Executed:      len(pending),
		Resumed:       resumed,
	}
	for _, t := range done {
		if t.Failed {
			res.FailedChips++
		}
	}
	if path != "" {
		cp := r.checkpoint(done, res.Frontier, res.NominalFPS, res.CleanAccuracy)
		if err := writeCheckpoint(path, cp); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// checkpoint assembles the durable state from the completed-trial map.
func (r *Runner) checkpoint(done map[trialKey]TrialResult, frontier []FrontierPoint, nominalFPS, cleanAcc float64) *Checkpoint {
	cp := &Checkpoint{
		Version:       checkpointVersion,
		ID:            r.ID,
		Spec:          r.Spec,
		Done:          make([]TrialResult, 0, len(done)),
		Frontier:      frontier,
		NominalFPS:    nominalFPS,
		CleanAccuracy: cleanAcc,
	}
	for _, t := range done {
		cp.Done = append(cp.Done, t)
	}
	sortResults(cp.Done)
	return cp
}

// runTrial computes one (severity, trial) cell: sample faults from the
// severity-scaled model, degrade locally (a chip with no compute path is
// a yield loss, never an evaluation), measure degraded throughput via
// Eval, and evaluate the reference net on the trial's device.
func (r *Runner) runTrial(ctx context.Context, cfg arch.SystemConfig, har *harness, sev, trial int) (TrialResult, error) {
	if err := ctx.Err(); err != nil {
		return TrialResult{}, err
	}
	seed := TrialSeed(r.Spec.Seed, sev, trial)
	severity := r.Spec.Severities[sev]
	rng := rand.New(rand.NewSource(seed))
	fs := r.Spec.ScaledModel(severity).Sample(rng, cfg)
	fs.Name = fmt.Sprintf("sev%d-trial%d", sev, trial)
	t := TrialResult{Severity: sev, Trial: trial, Seed: seed}

	_, deg, err := fs.Degrade(cfg)
	if err != nil {
		if errors.Is(err, faults.ErrNothingRuns) {
			t.Failed = true
			return t, nil
		}
		return TrialResult{}, fmt.Errorf("robust: trial (%d,%d): %w", sev, trial, err)
	}
	t.HealthyRFCUs = deg.HealthyRFCUs
	t.EffectiveLambda = deg.EffectiveLambda
	t.EffectiveReuses = deg.EffectiveReuses

	m, err := r.Eval(ctx, r.Spec, fs, fmt.Sprintf("%s|%016x", r.ID, uint64(seed)))
	if err != nil {
		return TrialResult{}, fmt.Errorf("robust: trial (%d,%d): %w", sev, trial, err)
	}
	t.FPS, t.Energy = m.FPS, m.Energy

	t.Accuracy = har.accuracy(seed, severity)
	if r.Spec.Retrain {
		acc := har.retrain(seed, severity)
		t.RetrainedAccuracy = &acc
	}
	return t, nil
}

// partialPoint computes one severity's incumbent frontier point from the
// trials completed so far.
func partialPoint(spec Spec, done map[trialKey]TrialResult, sev int) FrontierPoint {
	var ts []TrialResult
	for t := 0; t < spec.Trials; t++ {
		if r, ok := done[trialKey{sev, t}]; ok {
			ts = append(ts, r)
		}
	}
	return frontierPoint(spec, sev, ts)
}

// frontierPoint summarizes one severity level's trials.
func frontierPoint(spec Spec, sev int, ts []TrialResult) FrontierPoint {
	p := FrontierPoint{Severity: spec.Severities[sev], SeverityIndex: sev, Trials: len(ts)}
	var fps, acc, retrained []float64
	for _, t := range ts {
		if t.Failed {
			p.Failed++
			continue
		}
		fps = append(fps, t.FPS)
		acc = append(acc, t.Accuracy)
		if t.RetrainedAccuracy != nil {
			retrained = append(retrained, *t.RetrainedAccuracy)
		}
	}
	if p.Trials > 0 {
		p.Yield = float64(p.Trials-p.Failed) / float64(p.Trials)
	}
	if len(fps) > 0 {
		p.FPS = faults.NewDistribution(fps)
		p.Accuracy = faults.NewDistribution(acc)
		p.FleetFPS = p.Yield * p.FPS.Mean
	}
	if len(retrained) > 0 {
		d := faults.NewDistribution(retrained)
		p.Retrained = &d
	}
	return p
}

// computeFrontier builds the final frontier from the complete trial map,
// in severity order. It depends only on the trial values, never on the
// order they were computed or which process computed them.
func computeFrontier(spec Spec, done map[trialKey]TrialResult) []FrontierPoint {
	out := make([]FrontierPoint, len(spec.Severities))
	for s := range spec.Severities {
		out[s] = partialPoint(spec, done, s)
	}
	return out
}
