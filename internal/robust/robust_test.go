package robust

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"refocus/internal/faults"
)

// testSpec is a deliberately tiny campaign: 2 severities × 4 trials with
// a small reference task, so a full run (including per-trial accuracy
// evaluation through the JTC noise model) stays test-fast.
func testSpec() Spec {
	return Spec{
		Preset:     "fb",
		Severities: []float64{0, 1.5},
		Trials:     4,
		Seed:       11,
		Model:      faults.MonteCarloModel{RFCUFailProb: 0.2, WavelengthFailProb: 0.05, BufferLossSigmaDB: 0.4},
		Task:       TaskSpec{Classes: 2, Size: 4, TrainSamples: 6, TestSamples: 4, Epochs: 1, LearningRate: 0.05},
	}.WithDefaults()
}

// fakeEval is a deterministic, instant TrialEval: metrics derive purely
// from the sampled fault set, standing in for the real evaluator in
// runner-mechanics tests.
func fakeEval(ctx context.Context, spec Spec, fs faults.FaultSet, _ string) (TrialMetrics, error) {
	if err := ctx.Err(); err != nil {
		return TrialMetrics{}, err
	}
	return TrialMetrics{
		FPS:    1000 - 10*float64(len(fs.DeadRFCUs)) - fs.BufferExcessLossDB,
		Energy: 1 + 0.1*float64(len(fs.DeadWavelengths)),
	}, nil
}

// mustID resolves a spec's campaign identity.
func mustID(t *testing.T, spec Spec) string {
	t.Helper()
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// runCampaign runs a spec to completion in dir.
func runCampaign(t *testing.T, spec Spec, dir string, par int) *Result {
	t.Helper()
	r := &Runner{Spec: spec, ID: mustID(t, spec), Dir: dir, Eval: fakeEval, Parallelism: par}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// marshalFrontier canonicalizes a frontier for byte comparison.
func marshalFrontier(t *testing.T, f []FrontierPoint) []byte {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTrialSeedIndexDerived: per-trial seeds are distinct across the
// grid and depend only on (seed, severity, trial).
func TestTrialSeedIndexDerived(t *testing.T) {
	seen := make(map[int64]string)
	for sev := 0; sev < 8; sev++ {
		for trial := 0; trial < 64; trial++ {
			s := TrialSeed(7, sev, trial)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (%d,%d) and %s both map to %d", sev, trial, prev, s)
			}
			seen[s] = ""
			if s != TrialSeed(7, sev, trial) {
				t.Fatal("TrialSeed is not a pure function")
			}
		}
	}
	if TrialSeed(7, 0, 0) == TrialSeed(8, 0, 0) {
		t.Error("different campaign seeds produced the same trial seed")
	}
}

// TestScaledModel: probabilities scale linearly and clamp at 1; severity
// zero is a perfect fab.
func TestScaledModel(t *testing.T) {
	s := Spec{Model: faults.MonteCarloModel{RFCUFailProb: 0.4, WavelengthFailProb: 0.01, BufferLossSigmaDB: 0.5}}
	m := s.ScaledModel(0)
	if m != (faults.MonteCarloModel{}) {
		t.Errorf("severity 0 should zero the model, got %+v", m)
	}
	m = s.ScaledModel(3)
	if m.RFCUFailProb != 1 {
		t.Errorf("RFCUFailProb should clamp at 1, got %g", m.RFCUFailProb)
	}
	if m.WavelengthFailProb != 0.03 || m.BufferLossSigmaDB != 1.5 {
		t.Errorf("linear scaling broken: %+v", m)
	}
}

// TestSpecIDIdentity: the campaign ID is stable across calls, sensitive
// to the knobs that change results, and insensitive to design-point
// spelling (preset alias vs canonical name).
func TestSpecIDIdentity(t *testing.T) {
	spec := testSpec()
	if mustID(t, spec) != mustID(t, spec) {
		t.Fatal("ID is not deterministic")
	}
	alias := spec
	alias.Preset = "ReFOCUS-FB"
	if mustID(t, alias) != mustID(t, spec) {
		t.Error("preset alias changed the campaign identity")
	}
	reseeded := spec
	reseeded.Seed = 99
	if mustID(t, reseeded) == mustID(t, spec) {
		t.Error("changing the seed kept the campaign identity")
	}
	retrain := spec
	retrain.Retrain = true
	if mustID(t, retrain) == mustID(t, spec) {
		t.Error("toggling Retrain kept the campaign identity")
	}
}

// TestSpecValidate rejects the malformed corners.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no design point", func(s *Spec) { s.Preset = "" }},
		{"unknown preset", func(s *Spec) { s.Preset = "nope" }},
		{"unknown network", func(s *Spec) { s.Network = "nope" }},
		{"zero trials", func(s *Spec) { s.Trials = -1 }},
		{"trial budget", func(s *Spec) { s.Trials = maxTrials + 1 }},
		{"negative severity", func(s *Spec) { s.Severities = []float64{-1} }},
		{"odd task size", func(s *Spec) { s.Task.Size = 6 }},
		{"one class", func(s *Spec) { s.Task.Classes = 1 }},
		{"bad rate", func(s *Spec) { s.Task.LearningRate = -0.1 }},
		{"bad model", func(s *Spec) { s.Model.RFCUFailProb = 1.5 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, spec)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("base test spec should validate: %v", err)
	}
}

// TestCampaignDeterministic: two uninterrupted runs of the same spec in
// fresh directories produce byte-identical frontiers, regardless of
// worker parallelism.
func TestCampaignDeterministic(t *testing.T) {
	spec := testSpec()
	a := runCampaign(t, spec, t.TempDir(), 1)
	b := runCampaign(t, spec, t.TempDir(), 4)
	fa, fb := marshalFrontier(t, a.Frontier), marshalFrontier(t, b.Frontier)
	if !bytes.Equal(fa, fb) {
		t.Errorf("frontiers differ across parallelism:\n%s\n%s", fa, fb)
	}
	if a.CleanAccuracy != b.CleanAccuracy || a.NominalFPS != b.NominalFPS {
		t.Error("campaign baselines differ between identical runs")
	}
	total := len(spec.Severities) * spec.Trials
	if a.Executed != total || a.Resumed != 0 {
		t.Errorf("uninterrupted run reported executed=%d resumed=%d, want %d/0", a.Executed, a.Resumed, total)
	}
}

// TestCampaignResumeByteIdentical is the checkpoint-lifecycle contract:
// a campaign canceled partway through, then rerun in the same directory,
// skips the completed trials and still produces a frontier byte-identical
// to an uninterrupted run's.
func TestCampaignResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	total := len(spec.Severities) * spec.Trials

	control := runCampaign(t, spec, t.TempDir(), 2)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := &Runner{
		Spec: spec, ID: mustID(t, spec), Dir: dir, Eval: fakeEval, Parallelism: 1,
		OnUpdate: func(u Update) {
			if u.Completed >= 3 {
				cancel() // simulate the process dying mid-campaign
			}
		},
	}
	if _, err := interrupted.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	cp, err := LoadCheckpoint(CheckpointPath(dir, interrupted.ID))
	if err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	if len(cp.Done) == 0 || len(cp.Done) >= total {
		t.Fatalf("interruption left %d/%d trials checkpointed; want a strict partial", len(cp.Done), total)
	}
	if cp.Frontier != nil {
		t.Error("partial checkpoint must not carry a final frontier")
	}

	var resumedHook atomic.Int64
	resumed := &Runner{
		Spec: spec, ID: interrupted.ID, Dir: dir, Eval: fakeEval, Parallelism: 2,
		Hooks: Hooks{TrialResumed: func(TrialResult) { resumedHook.Add(1) }},
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != len(cp.Done) || int(resumedHook.Load()) != len(cp.Done) {
		t.Errorf("resumed=%d hook=%d, want %d", res.Resumed, resumedHook.Load(), len(cp.Done))
	}
	if res.Executed+res.Resumed != total {
		t.Errorf("executed %d + resumed %d != total %d (duplicate or lost trials)", res.Executed, res.Resumed, total)
	}
	fc, fr := marshalFrontier(t, control.Frontier), marshalFrontier(t, res.Frontier)
	if !bytes.Equal(fc, fr) {
		t.Errorf("resumed frontier differs from uninterrupted run:\ncontrol: %s\nresumed: %s", fc, fr)
	}

	// The final checkpoint now carries the frontier — running the spec
	// again is a pure resume: zero executed trials.
	again, err := (&Runner{Spec: spec, ID: interrupted.ID, Dir: dir, Eval: fakeEval}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Resumed != total {
		t.Errorf("third run executed %d trials, want 0 (all %d from checkpoint)", again.Executed, total)
	}
	if !bytes.Equal(fc, marshalFrontier(t, again.Frontier)) {
		t.Error("pure-resume frontier differs from control")
	}
}

// TestCheckpointRejectsWrongCampaign: a checkpoint file for a different
// campaign identity refuses to resume instead of mixing trials.
func TestCheckpointRejectsWrongCampaign(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	id := mustID(t, spec)
	other := &Checkpoint{Version: checkpointVersion, ID: "deadbeef", Spec: spec}
	if err := writeCheckpoint(CheckpointPath(dir, id), other); err != nil {
		t.Fatal(err)
	}
	_, err := (&Runner{Spec: spec, ID: id, Dir: dir, Eval: fakeEval}).Run(context.Background())
	if !errors.Is(err, errWrongCampaign) {
		t.Fatalf("got %v, want errWrongCampaign", err)
	}
}

// TestCheckpointLoadRejects: version skew, unknown fields and torn files
// all fail loudly; a missing file reports os.ErrNotExist.
func TestCheckpointLoadRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want os.ErrNotExist", err)
	}
	for name, body := range map[string]string{
		"version":  `{"Version": 99, "ID": "x", "Spec": {}, "Done": []}`,
		"unknown":  `{"Version": 1, "ID": "x", "Spec": {}, "Done": [], "Bogus": 1}`,
		"torn":     `{"Version": 1, "ID": "x"`,
		"empty-id": `{"Version": 1, "ID": "", "Spec": {}, "Done": []}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); err == nil {
			t.Errorf("%s: LoadCheckpoint accepted %s", name, body)
		}
	}
}

// TestRetrainCampaign: the Retrain flag populates the retrained-accuracy
// distribution on surviving trials.
func TestRetrainCampaign(t *testing.T) {
	spec := testSpec()
	spec.Severities = []float64{1}
	spec.Trials = 2
	spec.Retrain = true
	res := runCampaign(t, spec, "", 2)
	if len(res.Frontier) != 1 {
		t.Fatalf("want 1 frontier point, got %d", len(res.Frontier))
	}
	p := res.Frontier[0]
	if p.Trials != 2 {
		t.Fatalf("frontier counted %d trials, want 2", p.Trials)
	}
	if p.Trials-p.Failed > 0 && p.Retrained == nil {
		t.Error("surviving retrain trials reported no retrained distribution")
	}
}

// TestDirectEvalNominal: the in-process evaluator produces positive
// metrics for a healthy design point and degrades under a fault set.
func TestDirectEvalNominal(t *testing.T) {
	spec := testSpec()
	eval := DirectEval()
	healthy, err := eval(context.Background(), spec, faults.FaultSet{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if healthy.FPS <= 0 || healthy.Energy <= 0 {
		t.Fatalf("nominal metrics must be positive: %+v", healthy)
	}
	degraded, err := eval(context.Background(), spec, faults.FaultSet{Name: "t", DeadRFCUs: []int{0, 1}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if degraded.FPS >= healthy.FPS {
		t.Errorf("dead RFCUs should cost throughput: degraded %.1f >= healthy %.1f", degraded.FPS, healthy.FPS)
	}
}

// TestManagerLifecycle: Start runs a campaign to done, resubmission
// attaches while running and reports done afterwards, unknown IDs miss,
// and StatusFromDisk sees the finished checkpoint.
func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(ManagerConfig{Dir: dir, Eval: fakeEval, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := testSpec()
	job, created, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Start did not create the job")
	}
	<-job.Done()
	st := job.Status()
	if st.Status != StatusDone {
		t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
	}
	total := len(spec.Severities) * spec.Trials
	if st.CompletedTrials != total || len(st.Frontier) != len(spec.Severities) {
		t.Errorf("status reports %d/%d trials, %d frontier points", st.CompletedTrials, total, len(st.Frontier))
	}

	if _, ok := m.Get("nope"); ok {
		t.Error("Get returned a job for an unknown ID")
	}
	disk, err := m.StatusFromDisk(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if disk.Status != StatusDone || len(disk.Frontier) != len(spec.Severities) {
		t.Errorf("disk status %q with %d frontier points", disk.Status, len(disk.Frontier))
	}

	// A second Start on the finished campaign resumes from the final
	// checkpoint: it completes with zero executed trials.
	job2, _, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job2.Done()
	if st := job2.Status(); st.ExecutedTrials != 0 || st.ResumedTrials != total {
		t.Errorf("re-run executed %d / resumed %d, want 0/%d", st.ExecutedTrials, st.ResumedTrials, total)
	}
}

// TestManagerBusy: MaxActive bounds concurrent campaigns with ErrBusy.
func TestManagerBusy(t *testing.T) {
	release := make(chan struct{})
	slowEval := func(ctx context.Context, spec Spec, fs faults.FaultSet, key string) (TrialMetrics, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return TrialMetrics{}, ctx.Err()
		}
		return fakeEval(ctx, spec, fs, key)
	}
	m, err := NewManager(ManagerConfig{Eval: slowEval, MaxActive: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(release)

	first := testSpec()
	if _, _, err := m.Start(first); err != nil {
		t.Fatal(err)
	}
	second := testSpec()
	second.Seed = 999
	if _, _, err := m.Start(second); !errors.Is(err, ErrBusy) {
		t.Fatalf("second campaign got %v, want ErrBusy", err)
	}
	// Re-submitting the *same* spec attaches instead of counting against
	// the budget.
	if _, created, err := m.Start(first); err != nil || created {
		t.Fatalf("idempotent resubmit: created=%v err=%v", created, err)
	}
}

// TestJobSubscribe: subscribers see trial updates and the channel closes
// on completion; late subscribers get an already-closed channel.
func TestJobSubscribe(t *testing.T) {
	m, err := NewManager(ManagerConfig{Eval: fakeEval, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spec := testSpec()
	job, _, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	saw := 0
	for range ch {
		saw++
	}
	<-job.Done()
	if saw == 0 {
		t.Error("subscriber saw no updates before close")
	}
	late, lateCancel := job.Subscribe()
	defer lateCancel()
	if _, ok := <-late; ok {
		t.Error("late subscriber's channel should be closed immediately")
	}
}
