package robust

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrBusy reports that the manager is already running its maximum number
// of concurrent campaigns; the serving tier maps it to 429 with a
// Retry-After, mirroring worker-slot shedding.
var ErrBusy = errors.New("robust: too many active campaigns")

// Status is a campaign lifecycle state as reported by StatusResponse.
type Status string

// Campaign lifecycle states. StatusInterrupted is only ever reported
// from disk: a checkpoint exists but no live job does, i.e. the process
// died mid-campaign and re-submitting the spec will resume it.
const (
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusInterrupted Status = "interrupted"
)

// StatusResponse is the wire form of a campaign's state, served by
// GET /v1/robustness/{id} and embedded in the final stream line.
type StatusResponse struct {
	// ID is the campaign identity; Name the spec's optional label.
	ID   string `json:",omitempty"`
	Name string `json:",omitempty"`
	// Status is the lifecycle state.
	Status Status
	// TotalTrials is the campaign budget (severities × trials);
	// CompletedTrials how many are finished, split into ExecutedTrials
	// (computed by a live process) and ResumedTrials (recovered from the
	// checkpoint). FailedChips counts hard manufacturing failures among
	// the completed trials.
	TotalTrials     int
	CompletedTrials int
	ExecutedTrials  int
	ResumedTrials   int
	FailedChips     int
	// NominalFPS and CleanAccuracy are the campaign baselines, present
	// once known.
	NominalFPS    float64 `json:",omitempty"`
	CleanAccuracy float64 `json:",omitempty"`
	// Frontier is the accuracy/yield/throughput frontier: final on done
	// campaigns, incumbent (observed-so-far) while running.
	Frontier []FrontierPoint `json:",omitempty"`
	// Error explains a failed campaign.
	Error string `json:",omitempty"`
}

// ManagerConfig configures a Manager.
type ManagerConfig struct {
	// Dir is the checkpoint directory; "" runs campaigns without
	// durability (they cannot survive a restart).
	Dir string
	// Eval evaluates trials (required).
	Eval TrialEval
	// Parallelism bounds concurrent trials per campaign; <1 defaults
	// to 2.
	Parallelism int
	// MaxActive bounds concurrently running campaigns; <1 defaults to 4.
	MaxActive int
	// Hooks observes campaign and trial events (metrics counters).
	Hooks Hooks
}

// Manager owns campaign jobs for a serving process: it starts them,
// deduplicates re-submissions by campaign identity, exposes status for
// live and on-disk campaigns, and cancels everything on Close.
type Manager struct {
	cfg    ManagerConfig
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*Job
	wg   sync.WaitGroup
}

// NewManager builds a Manager, creating the checkpoint directory if
// configured.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Eval == nil {
		return nil, errors.New("robust: ManagerConfig.Eval is required")
	}
	if cfg.MaxActive < 1 {
		cfg.MaxActive = 4
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("robust: campaign dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{cfg: cfg, ctx: ctx, cancel: cancel, jobs: make(map[string]*Job)}, nil
}

// Start launches a campaign for spec, or attaches to the already-running
// job with the same identity (created reports which). A spec whose
// checkpoint exists on disk resumes from it. Returns ErrBusy when
// MaxActive campaigns are already running.
func (m *Manager) Start(spec Spec) (job *Job, created bool, err error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("robust: manager closed: %w", err)
	}
	if j, ok := m.jobs[id]; ok && !j.finished() {
		return j, false, nil
	}
	active := 0
	for _, j := range m.jobs {
		if !j.finished() {
			active++
		}
	}
	if active >= m.cfg.MaxActive {
		return nil, false, ErrBusy
	}

	j := newJob(id, spec)
	m.jobs[id] = j
	m.wg.Add(1)
	go m.run(j)
	return j, true, nil
}

// Get returns the live job with the given campaign ID, if any.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// StatusFromDisk reads a campaign's checkpoint and reports it as "done"
// (frontier present) or "interrupted" (partial — resubmitting the spec
// resumes it). A missing checkpoint returns an error satisfying
// errors.Is(err, os.ErrNotExist).
func (m *Manager) StatusFromDisk(id string) (StatusResponse, error) {
	if m.cfg.Dir == "" {
		return StatusResponse{}, os.ErrNotExist
	}
	cp, err := LoadCheckpoint(CheckpointPath(m.cfg.Dir, id))
	if err != nil {
		return StatusResponse{}, err
	}
	st := StatusResponse{
		ID:              cp.ID,
		Name:            cp.Spec.Name,
		Status:          StatusInterrupted,
		TotalTrials:     len(cp.Spec.Severities) * cp.Spec.Trials,
		CompletedTrials: len(cp.Done),
		ResumedTrials:   len(cp.Done),
	}
	for _, t := range cp.Done {
		if t.Failed {
			st.FailedChips++
		}
	}
	if cp.Frontier != nil {
		st.Status = StatusDone
		st.Frontier = cp.Frontier
		st.NominalFPS = cp.NominalFPS
		st.CleanAccuracy = cp.CleanAccuracy
	}
	return st, nil
}

// Close cancels every running campaign and waits for them to unwind.
// Their checkpoints survive, so a restarted process resumes them.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// run executes one campaign job to completion.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	if h := m.cfg.Hooks.CampaignStarted; h != nil {
		h()
	}
	r := &Runner{
		Spec:        j.spec,
		ID:          j.id,
		Dir:         m.cfg.Dir,
		Eval:        m.cfg.Eval,
		Parallelism: m.cfg.Parallelism,
		Hooks: Hooks{
			TrialExecuted: func(t TrialResult) {
				j.recordTrial(t, false)
				if h := m.cfg.Hooks.TrialExecuted; h != nil {
					h(t)
				}
			},
			TrialResumed: func(t TrialResult) {
				j.recordTrial(t, true)
				if h := m.cfg.Hooks.TrialResumed; h != nil {
					h(t)
				}
			},
		},
		OnUpdate: j.publish,
	}
	res, err := r.Run(m.ctx)
	j.finish(res, err)
	if h := m.cfg.Hooks.CampaignDone; h != nil {
		h(err)
	}
}

// Job is one live campaign: its mutable progress state plus a broadcast
// channel fan-out for NDJSON streaming.
type Job struct {
	id   string
	spec Spec

	mu       sync.Mutex
	done     bool
	executed int
	resumed  int
	failed   int
	// incumbents holds the freshest frontier point per severity index.
	incumbents map[int]*FrontierPoint
	result     *Result
	errText    string
	subs       map[chan Update]struct{}
	doneCh     chan struct{}
}

func newJob(id string, spec Spec) *Job {
	return &Job{
		id:         id,
		spec:       spec,
		incumbents: make(map[int]*FrontierPoint),
		subs:       make(map[chan Update]struct{}),
		doneCh:     make(chan struct{}),
	}
}

// ID returns the campaign identity.
func (j *Job) ID() string { return j.id }

// Done is closed when the campaign finishes (any outcome).
func (j *Job) Done() <-chan struct{} { return j.doneCh }

func (j *Job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// recordTrial updates progress counters for one completed trial.
func (j *Job) recordTrial(t TrialResult, viaResume bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if viaResume {
		j.resumed++
	} else {
		j.executed++
	}
	if t.Failed {
		j.failed++
	}
}

// publish records the incumbent and broadcasts u to subscribers.
// Slow subscribers miss intermediate updates (their channel is full);
// the final line is delivered via Subscribe's close instead.
func (j *Job) publish(u Update) {
	j.mu.Lock()
	if u.Incumbent != nil {
		j.incumbents[u.Incumbent.SeverityIndex] = u.Incumbent
	}
	for ch := range j.subs {
		select {
		case ch <- u:
		default:
		}
	}
	j.mu.Unlock()
}

// finish records the terminal state and wakes everyone waiting.
func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	j.done = true
	j.result = res
	if err != nil {
		j.errText = err.Error()
	}
	for ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[chan Update]struct{})
	j.mu.Unlock()
	close(j.doneCh)
}

// Subscribe returns a channel of progress updates and a cancel func the
// caller must invoke when done. The channel is closed when the campaign
// finishes (immediately, if it already has); intermediate updates are
// dropped rather than blocking the campaign when the subscriber lags.
func (j *Job) Subscribe() (<-chan Update, func()) {
	ch := make(chan Update, 16)
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// Status reports the job's current state, including incumbent frontier
// points for severities with at least one completed trial.
func (j *Job) Status() StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StatusResponse{
		ID:              j.id,
		Name:            j.spec.Name,
		Status:          StatusRunning,
		TotalTrials:     len(j.spec.Severities) * j.spec.Trials,
		CompletedTrials: j.executed + j.resumed,
		ExecutedTrials:  j.executed,
		ResumedTrials:   j.resumed,
		FailedChips:     j.failed,
		Error:           j.errText,
	}
	if j.done {
		if j.result != nil {
			st.Status = StatusDone
			st.Frontier = j.result.Frontier
			st.NominalFPS = j.result.NominalFPS
			st.CleanAccuracy = j.result.CleanAccuracy
		} else {
			st.Status = StatusFailed
		}
		return st
	}
	for s := range j.spec.Severities {
		if p := j.incumbents[s]; p != nil {
			st.Frontier = append(st.Frontier, *p)
		}
	}
	return st
}
