module refocus

go 1.22
