package refocus

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryExportedSymbolDocumented walks every non-test source file of
// the library and fails on any exported declaration without a doc
// comment — enforcing the documentation deliverable mechanically rather
// than by convention.
func TestEveryExportedSymbolDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 30 {
		t.Fatalf("only found %d source files; walk misconfigured?", len(files))
	}

	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if f.Name.Name == "main" {
			// Command/example mains document at the package level only.
			if f.Doc == nil {
				missing = append(missing, path+": package main without a package comment")
			}
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// String() methods implement fmt.Stringer and are
				// self-describing by convention.
				if d.Name.IsExported() && d.Doc == nil && d.Name.Name != "String" {
					missing = append(missing, fset.Position(d.Pos()).String()+": func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, fset.Position(s.Pos()).String()+": type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing, fset.Position(s.Pos()).String()+": "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented exported symbol: %s", m)
	}
}
